package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/lrumodel"
	"repro/internal/placement"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// ModelCompareRow is one cache size of the model-comparison sweep.
type ModelCompareRow struct {
	Slots  int
	PaperH float64 // Equations (1)+(2)
	CheH   float64 // Che's characteristic-time approximation
	SimH   float64 // trace-driven LRU ground truth
}

// ModelComparison sweeps a single shared LRU cache over sizes and
// compares the paper's analytical hit ratio (Equations 1 and 2) and
// Che's characteristic-time approximation against a trace-driven
// simulation — a model ablation the paper does not run. The workload is
// the configured site mix collapsed onto one cache with unit-size
// objects, the setting in which both models are defined.
func ModelComparison(ctx context.Context, opts Options, slotFracs []float64) ([]ModelCompareRow, error) {
	wcfg := opts.Base.Workload
	w, err := workload.Generate(wcfg, xrand.New(opts.Base.Seed))
	if err != nil {
		return nil, err
	}
	specs := w.Specs()
	weights := make([]float64, len(w.Sites))
	for j, s := range w.Sites {
		weights[j] = s.Weight
	}
	totalObjects := wcfg.Sites() * wcfg.ObjectsPerSite
	pred := lrumodel.NewPredictor(specs, weights, 1, int64(totalObjects))

	rows := make([]ModelCompareRow, len(slotFracs))
	err = parallelFor(len(slotFracs), func(fi int) error {
		slots := int(slotFracs[fi] * float64(totalObjects))
		if slots < 1 {
			slots = 1
		}
		rows[fi] = ModelCompareRow{
			Slots:  slots,
			PaperH: pred.OverallHitRatio(int64(slots)),
			CheH:   pred.CheOverallHitRatio(int64(slots)),
			SimH:   simulateSharedLRU(specs, weights, slots, 800000, xrand.New(opts.TraceSeed+uint64(fi))),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// simulateSharedLRU measures the overall hit ratio of one LRU cache fed
// by the IRM mixture of all sites (unit-size objects).
func simulateSharedLRU(specs []lrumodel.SiteSpec, weights []float64, slots, requests int, r *xrand.Source) float64 {
	c := cache.NewLRU(int64(slots))
	zipfs := make([]*stats.Zipf, len(specs))
	for j, s := range specs {
		zipfs[j] = stats.NewZipf(s.Objects, s.Theta)
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	cdf := make([]float64, len(weights))
	cum := 0.0
	for j, w := range weights {
		cum += w / total
		cdf[j] = cum
	}
	warm := requests / 4
	var hits, lookups float64
	for i := 0; i < requests; i++ {
		u := r.Float64()
		site := 0
		for site < len(cdf)-1 && u > cdf[site] {
			site++
		}
		key := cache.Key{Site: site, Object: zipfs[site].Sample(r)}
		hit := c.Get(key)
		if !hit {
			c.Put(key, 1)
		}
		if i >= warm {
			lookups++
			if hit {
				hits++
			}
		}
	}
	return hits / lookups
}

// FormatModelCompareRows renders the model-comparison sweep.
func FormatModelCompareRows(rows []ModelCompareRow) string {
	var b strings.Builder
	b.WriteString("Model ablation — paper Eq.(1)+(2) vs Che approximation vs simulated LRU\n")
	b.WriteString("slots B     paper-h      che-h      sim-h   paper-err    che-err\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9d %9.4f %10.4f %10.4f %+11.4f %+10.4f\n",
			r.Slots, r.PaperH, r.CheH, r.SimH, r.PaperH-r.SimH, r.CheH-r.SimH)
	}
	return b.String()
}

// RobustnessRow is one locality level of the IRM-assumption stress test.
type RobustnessRow struct {
	LocalityProb float64
	Predicted    float64 // hybrid's model-predicted cost (IRM assumption)
	Actual       float64 // simulated cost under the correlated workload
}

// ErrPct is the relative prediction error in percent.
func (r RobustnessRow) ErrPct() float64 {
	if r.Actual == 0 {
		return 0
	}
	return 100 * (r.Predicted - r.Actual) / r.Actual
}

// ModelRobustness stresses the model's independent-reference assumption:
// the workload gains temporal locality (requests repeat recent objects)
// while the hybrid algorithm keeps planning with the IRM model. The
// growing gap between predicted and simulated cost bounds how far the
// paper's approach can be trusted on correlated traffic.
func ModelRobustness(ctx context.Context, opts Options, probs []float64) ([]RobustnessRow, error) {
	rows := make([]RobustnessRow, len(probs))
	err := parallelFor(len(probs), func(pi int) error {
		cfg := opts.Base
		cfg.Workload.LocalityProb = probs[pi]
		sc, err := scenario.Build(cfg)
		if err != nil {
			return err
		}
		res, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
			Specs:          sc.Work.Specs(),
			AvgObjectBytes: sc.Work.AvgObjectBytes,
		})
		if err != nil {
			return err
		}
		simCfg := opts.Sim
		simCfg.UseCache = true
		simCfg.KeepResponseTimes = false
		m, err := sim.RunParallel(ctx, sc, res.Placement, simCfg, xrand.New(opts.TraceSeed))
		if err != nil {
			return err
		}
		rows[pi] = RobustnessRow{
			LocalityProb: probs[pi],
			Predicted:    res.PredictedCost,
			Actual:       m.MeanHops,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatRobustnessRows renders the IRM stress test.
func FormatRobustnessRows(rows []RobustnessRow) string {
	var b strings.Builder
	b.WriteString("IRM stress — model accuracy under temporal locality (hops/request)\n")
	b.WriteString("locality    predicted     actual      err%\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10.2f %10.3f %10.3f %9.2f\n",
			r.LocalityProb, r.Predicted, r.Actual, r.ErrPct())
	}
	return b.String()
}
