package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/consistency"
	"repro/internal/placement"
	"repro/internal/scenario"
	"repro/internal/xrand"
)

// ConsistencyRow is one mechanism of the cache-consistency comparison.
type ConsistencyRow struct {
	Name            string
	MeanRTMs        float64
	StaleFraction   float64
	EffectiveLambda float64
	Revalidations   int64
}

// ConsistencyComparison grounds the paper's §3.3 λ abstraction: it runs
// the hybrid placement under real consistency mechanisms — server-based
// invalidation (strong, [18]) and TTLs from minutes to hours (weak) —
// and reports the latency, the stale-serve fraction, and the effective λ
// each mechanism induces. The paper's Figure 4 experiment corresponds to
// an effective λ of 0.1 with strong consistency.
func ConsistencyComparison(ctx context.Context, opts Options) ([]ConsistencyRow, error) {
	sc, err := scenario.Build(opts.Base)
	if err != nil {
		return nil, err
	}
	res, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
		Specs:          sc.Work.Specs(),
		AvgObjectBytes: sc.Work.AvgObjectBytes,
	})
	if err != nil {
		return nil, err
	}

	base := consistency.DefaultConfig()
	base.Requests = opts.Sim.Requests
	base.Warmup = opts.Sim.Warmup
	base.FirstHopMs = opts.Sim.FirstHopMs
	base.PerHopMs = opts.Sim.PerHopMs
	// Scale the arrival rate so the run spans ~48 virtual hours: TTLs
	// of minutes-to-hours and 1–24 h modification intervals both need
	// the clock to actually traverse those scales.
	base.RequestRate = float64(base.Requests+base.Warmup) / (48 * 3600)

	type job struct {
		name string
		cfg  consistency.Config
	}
	jobs := []job{
		{"invalidation (strong)", withMech(base, consistency.Invalidation, 0)},
		{"ttl 10 min", withMech(base, consistency.TTL, 600)},
		{"ttl 1 hour", withMech(base, consistency.TTL, 3600)},
		{"ttl 6 hours", withMech(base, consistency.TTL, 6*3600)},
	}
	rows := make([]ConsistencyRow, len(jobs))
	err = parallelFor(len(jobs), func(ji int) error {
		m, err := consistency.Run(sc, res.Placement, jobs[ji].cfg, xrand.New(opts.TraceSeed))
		if err != nil {
			return err
		}
		rows[ji] = ConsistencyRow{
			Name:            jobs[ji].name,
			MeanRTMs:        m.MeanRTMs,
			StaleFraction:   m.StaleFraction(),
			EffectiveLambda: m.EffectiveLambda(),
			Revalidations:   m.Revalidations,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func withMech(base consistency.Config, mech consistency.Mechanism, ttl float64) consistency.Config {
	base.Mechanism = mech
	if ttl > 0 {
		base.TTLSeconds = ttl
	}
	return base
}

// FormatConsistencyRows renders the consistency comparison.
func FormatConsistencyRows(rows []ConsistencyRow) string {
	var b strings.Builder
	b.WriteString("§3.3 grounded — consistency mechanisms under the hybrid placement\n")
	b.WriteString("mechanism              mean RT (ms)  stale-frac  effective-λ  revalidations\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %12.2f %11.4f %12.4f %14d\n",
			r.Name, r.MeanRTMs, r.StaleFraction, r.EffectiveLambda, r.Revalidations)
	}
	return b.String()
}
