package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/placement"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// ClusterRow is one mechanism of the per-cluster replication comparison.
type ClusterRow struct {
	Name     string
	MeanRTMs float64
	MeanHops float64
	Replicas int
}

// ClusterComparison settles the paper's §5.3 future-work claim: against
// per-cluster replication (Chen et al. [6], here: popularity-band
// clusters), the hybrid scheme should "again be the winner with the
// latency reduction varying in between the per-site replication and the
// caching case". It compares, on one trace:
//
//   - per-site replication (greedy-global, no caches)
//   - per-cluster replication (greedy-global over clusters, no caches)
//   - pure caching
//   - the hybrid algorithm at site granularity (the paper's)
//   - the hybrid algorithm at cluster granularity (a further extension)
func ClusterComparison(ctx context.Context, opts Options, clustersPerSite int) ([]ClusterRow, error) {
	sc, err := scenario.Build(opts.Base)
	if err != nil {
		return nil, err
	}
	cl, err := cluster.PopularityClusters(sc.Work, clustersPerSite)
	if err != nil {
		return nil, err
	}
	unitSys := cl.DeriveSystem(sc.Sys)
	if err := unitSys.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: derived cluster system invalid: %w", err)
	}
	lambda := opts.Base.Workload.Lambda

	type job struct {
		name     string
		build    func() (*placement.Result, error)
		useCache bool
		units    bool
	}
	jobs := []job{
		{"replication/site", func() (*placement.Result, error) {
			return placement.GreedyGlobal(sc.Sys), nil
		}, false, false},
		{"replication/cluster", func() (*placement.Result, error) {
			return placement.GreedyGlobal(unitSys), nil
		}, false, true},
		{"caching", func() (*placement.Result, error) {
			return placement.None(sc.Sys), nil
		}, true, false},
		{"hybrid/site", func() (*placement.Result, error) {
			return placement.Hybrid(sc.Sys, placement.HybridConfig{
				Specs:          sc.Work.Specs(),
				AvgObjectBytes: sc.Work.AvgObjectBytes,
			})
		}, true, false},
		{"hybrid/cluster", func() (*placement.Result, error) {
			return placement.Hybrid(unitSys, placement.HybridConfig{
				Specs:          cl.Specs(sc.Work, lambda),
				AvgObjectBytes: sc.Work.AvgObjectBytes,
			})
		}, true, true},
	}

	rows := make([]ClusterRow, len(jobs))
	err = parallelFor(len(jobs), func(ji int) error {
		j := jobs[ji]
		res, err := j.build()
		if err != nil {
			return err
		}
		simCfg := opts.Sim
		simCfg.UseCache = j.useCache
		simCfg.KeepResponseTimes = false
		if j.units {
			simCfg.UnitOf = cl.UnitOf
		}
		m, err := sim.RunParallel(ctx, sc, res.Placement, simCfg, xrand.New(opts.TraceSeed))
		if err != nil {
			return err
		}
		rows[ji] = ClusterRow{
			Name:     j.name,
			MeanRTMs: m.MeanRTMs,
			MeanHops: m.MeanHops,
			Replicas: res.Placement.Replicas(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatClusterRows renders the per-cluster comparison.
func FormatClusterRows(rows []ClusterRow, clustersPerSite int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§5.3 future work — per-cluster replication (%d clusters/site)\n", clustersPerSite)
	b.WriteString("mechanism             mean RT (ms)  cost (hops)  replicas\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-21s %12.2f %12.3f %9d\n", r.Name, r.MeanRTMs, r.MeanHops, r.Replicas)
	}
	return b.String()
}
