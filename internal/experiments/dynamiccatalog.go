package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// MechControlled is the online control plane run over a churning
// catalog: an initial hybrid placement, then a controller that
// estimates demand from the observed stream and re-places periodically
// (with the churn signal allowed to force plans past hysteresis; see
// control.Config.ChurnKick). It is the dynamic-catalog counterpart of
// MechHybrid, whose placement stays frozen at generation 0.
const MechControlled Mechanism = "controlled-hybrid"

// DynamicOptions parameterizes the dynamic-catalog comparison on top of
// Options. Zero value is unusable; start from DefaultDynamicOptions.
type DynamicOptions struct {
	// ChurnRates are the per-live-site perish rates (per request) to
	// sweep, in addition to the implicit static (rate 0) baseline. The
	// publish rate is matched to the death rate (rate × site count) so
	// the catalog stays near full occupancy.
	ChurnRates []float64
	// FlashCrowdBoost / FlashCrowdRequests give every newly published
	// generation a flash-crowd honeymoon (workload.DynamicConfig).
	FlashCrowdBoost    float64
	FlashCrowdRequests int
	// SegmentChainProb / ChainLength make that fraction of published
	// sites HLS-style segment chains.
	SegmentChainProb float64
	ChainLength      int
	// ReconcileEvery is the controlled mechanism's reconcile cadence in
	// requests; 0 disables reconciling (the controller never runs).
	ReconcileEvery int
	// ChurnKick is passed to control.Config.ChurnKick for the controlled
	// mechanism.
	ChurnKick float64
}

// DefaultDynamicOptions sweeps three churn rates spanning "a site
// outlives the run" to "placements stale within a reconcile window",
// with flash crowds and segment chains on.
func DefaultDynamicOptions() DynamicOptions {
	return DynamicOptions{
		ChurnRates:         []float64{0.00001, 0.00005, 0.00025},
		FlashCrowdBoost:    8,
		FlashCrowdRequests: 5000,
		SegmentChainProb:   0.25,
		ChainLength:        12,
		ReconcileEvery:     20000,
		ChurnKick:          0.05,
	}
}

// DynamicRow is one (catalog, mechanism) cell of the dynamic-catalog
// comparison.
type DynamicRow struct {
	Mechanism Mechanism
	// ChurnRate is the per-live-site perish rate per request; 0 is the
	// static catalog (the unmodified IRM stream — no churn, flash crowds
	// or chains, byte-identical to the paper's workload).
	ChurnRate float64
	MeanRTMs  float64
	MeanHops  float64
	// HitRatio and LocalFraction mirror sim.Metrics.
	HitRatio      float64
	LocalFraction float64
	// PerishedPct is the share of measured requests answered 404 for
	// withdrawn content; StaleRedirectPct the share redirected to the
	// origin because the replicas of their site hold a perished
	// generation's bytes.
	PerishedPct      float64
	StaleRedirectPct float64
	// StalePlacementPct is the end-of-run fraction of replicated sites
	// whose live catalog generation exceeds the generation their
	// replicas were placed for — placement capacity pinned to dead
	// content.
	StalePlacementPct float64
	// Turnover counts site publications over the whole run (warm-up
	// included).
	Turnover int64
	// Reconciles / Applied count the controlled mechanism's control
	// rounds (zero for the other mechanisms).
	Reconciles, Applied int64
}

// dynConfig derives the workload.DynamicConfig for one churn rate.
// Rate 0 returns the zero config: the static baseline.
func dynConfig(dyn DynamicOptions, rate float64, sites int) workload.DynamicConfig {
	if rate == 0 {
		return workload.DynamicConfig{}
	}
	return workload.DynamicConfig{
		PublishRate:        rate * float64(sites),
		PerishRate:         rate,
		FlashCrowdBoost:    dyn.FlashCrowdBoost,
		FlashCrowdRequests: dyn.FlashCrowdRequests,
		SegmentChainProb:   dyn.SegmentChainProb,
		ChainLength:        dyn.ChainLength,
	}
}

// DynamicComparison runs the dynamic-catalog experiment: caching,
// replication, hybrid and controlled-hybrid on the static catalog and
// on each churn rate in dyn.ChurnRates, all at 10% capacity with
// identical stream seeds. Rows are grouped by catalog (static first,
// then ascending churn), mechanisms in a fixed order within each group.
func DynamicComparison(ctx context.Context, opts Options, dyn DynamicOptions) ([]DynamicRow, error) {
	cfg := opts.Base
	cfg.CapacityFrac = 0.10
	cfg.Workload.Lambda = 0
	// The dynamic stream owns server attribution (diurnal phase shifts
	// would fight the static locality mixin).
	cfg.Workload.LocalityProb = 0
	sc, err := scenario.Build(cfg)
	if err != nil {
		return nil, err
	}
	rates := append([]float64{0}, dyn.ChurnRates...)
	mechs := []Mechanism{MechCaching, MechReplication, MechHybrid, MechControlled}
	rows := make([]DynamicRow, len(rates)*len(mechs))
	err = parallelFor(len(rows), func(k int) error {
		rate := rates[k/len(mechs)]
		mech := mechs[k%len(mechs)]
		dcfg := dynConfig(dyn, rate, sc.Sys.M())
		var row DynamicRow
		var err error
		if mech == MechControlled {
			row, err = runControlledDynamic(ctx, sc, opts, dyn, dcfg)
		} else {
			row, err = runDynamicMech(ctx, sc, opts, mech, dcfg)
		}
		if err != nil {
			return err
		}
		row.ChurnRate = rate
		rows[k] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// runDynamicMech simulates one frozen-placement mechanism against the
// dynamic stream: the placement is built on the generation-0 demand and
// never moves, so every republished site turns its replicas into dead
// weight (sim redirects those requests to the origin).
func runDynamicMech(ctx context.Context, sc *scenario.Scenario, opts Options, mech Mechanism, dcfg workload.DynamicConfig) (DynamicRow, error) {
	p, useCache, _, err := buildPlacement(sc, mech, opts.Model)
	if err != nil {
		return DynamicRow{}, err
	}
	ds, err := workload.NewDynamicStream(sc.Work, dcfg, xrand.New(opts.TraceSeed))
	if err != nil {
		return DynamicRow{}, err
	}
	simCfg := opts.Sim
	simCfg.UseCache = useCache
	simCfg.KeepResponseTimes = false
	m, err := sim.RunSourceParallel(ctx, sc, p, simCfg, sim.EndlessSource{S: ds})
	if err != nil {
		return DynamicRow{}, err
	}
	n := float64(m.Requests)
	return DynamicRow{
		Mechanism:         mech,
		MeanRTMs:          m.MeanRTMs,
		MeanHops:          m.MeanHops,
		HitRatio:          m.HitRatio(),
		LocalFraction:     m.LocalFraction(),
		PerishedPct:       100 * float64(m.Perished) / n,
		StaleRedirectPct:  100 * float64(m.StaleReplica) / n,
		StalePlacementPct: stalePlacementPct(p, nil, ds),
		Turnover:          ds.Publishes(),
	}, nil
}

// runControlledDynamic closes the loop: the controller only ever sees
// the observed request stream (perished requests are 404s, not demand),
// reconciles every dyn.ReconcileEvery requests, and refreshed replicas
// pick up the current catalog generation of their site. The serving
// rules mirror sim exactly (generation-keyed caches, stale replicas
// unusable), run inline because the placement changes mid-stream.
func runControlledDynamic(ctx context.Context, sc *scenario.Scenario, opts Options, dyn DynamicOptions, dcfg workload.DynamicConfig) (DynamicRow, error) {
	res, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
		Specs:          sc.Work.Specs(),
		AvgObjectBytes: sc.Work.AvgObjectBytes,
		Model:          opts.Model,
	})
	if err != nil {
		return DynamicRow{}, err
	}
	target := control.NewModelTarget(res.Placement)
	ctrl, err := control.New(control.Config{
		Base:           sc.Sys,
		Specs:          sc.Work.Specs(),
		AvgObjectBytes: sc.Work.AvgObjectBytes,
		Model:          opts.Model,
		Target:         target,
		ChurnKick:      dyn.ChurnKick,
	})
	if err != nil {
		return DynamicRow{}, err
	}
	est := ctrl.Estimator()
	ds, err := workload.NewDynamicStream(sc.Work, dcfg, xrand.New(opts.TraceSeed))
	if err != nil {
		return DynamicRow{}, err
	}

	p := target.Placement()
	caches := make([]cache.Cache, sc.Sys.N())
	for i := range caches {
		caches[i] = cache.NewLRU(p.Free(i))
	}
	placedGen := make([]int, sc.Sys.M())

	simCfg := opts.Sim
	total := simCfg.Warmup + simCfg.Requests
	row := DynamicRow{Mechanism: MechControlled}
	var rtSum, hopSum float64
	var perished, staleRedir, hits, lookups, local int64
	for t := 0; t < total; t++ {
		if t%4096 == 0 && ctx.Err() != nil {
			return DynamicRow{}, ctx.Err()
		}
		req := ds.Next()
		i, j := req.Server, req.Site
		measured := t >= simCfg.Warmup
		var hops float64
		if req.Perished {
			hops = sc.Sys.CostOrigin[i][j]
			if measured {
				perished++
			}
		} else {
			est.Observe(i, j)
			stale := req.Generation > placedGen[j]
			switch {
			case p.Has(i, j) && !stale:
				hops = 0
				if measured {
					local++
				}
			case !req.Cacheable:
				if stale {
					hops = sc.Sys.CostOrigin[i][j]
					if measured {
						staleRedir++
					}
				} else {
					hops = p.NearestCost(i, j)
				}
			default:
				key := cache.Key{Site: j, Object: req.Object + req.Generation<<32}
				if caches[i].Get(key) {
					hops = 0
					if measured {
						hits++
						lookups++
					}
				} else {
					if stale {
						hops = sc.Sys.CostOrigin[i][j]
						if measured {
							staleRedir++
						}
					} else {
						hops = p.NearestCost(i, j)
					}
					caches[i].Put(key, sc.Work.Size(j, req.Object))
					if measured {
						lookups++
					}
				}
			}
		}
		if measured {
			rtSum += simCfg.FirstHopMs + simCfg.PerHopMs*hops
			hopSum += hops
		}
		if dyn.ReconcileEvery > 0 && (t+1)%dyn.ReconcileEvery == 0 {
			rep, err := ctrl.Reconcile()
			if err != nil {
				return DynamicRow{}, err
			}
			row.Reconciles++
			if rep.Outcome == control.OutcomeApplied {
				row.Applied++
				p = target.Placement()
				// A freshly created replica copies the site's current
				// content: its column serves the live generation from now
				// on (per-column approximation of per-replica state).
				for _, r := range rep.Diff.Created {
					placedGen[r.Site] = ds.Generation(r.Site)
				}
				for i := range caches {
					caches[i].Resize(p.Free(i))
				}
			}
		}
	}

	n := float64(simCfg.Requests)
	row.MeanRTMs = rtSum / n
	row.MeanHops = hopSum / n
	if lookups > 0 {
		row.HitRatio = float64(hits) / float64(lookups)
	}
	row.LocalFraction = float64(local+hits) / n
	row.PerishedPct = 100 * float64(perished) / n
	row.StaleRedirectPct = 100 * float64(staleRedir) / n
	row.StalePlacementPct = stalePlacementPct(p, placedGen, ds)
	row.Turnover = ds.Publishes()
	return row, nil
}

// stalePlacementPct is the end-of-run staleness of a placement: of the
// sites holding at least one replica, the percentage whose live catalog
// generation exceeds the generation the replicas were placed for.
// placedGen nil means everything was placed at generation 0 (the frozen
// mechanisms).
func stalePlacementPct(p *core.Placement, placedGen []int, ds *workload.DynamicStream) float64 {
	n, m := p.System().N(), p.System().M()
	replicated, stale := 0, 0
	for j := 0; j < m; j++ {
		has := false
		for i := 0; i < n; i++ {
			if p.Has(i, j) {
				has = true
				break
			}
		}
		if !has {
			continue
		}
		replicated++
		g := 0
		if placedGen != nil {
			g = placedGen[j]
		}
		if ds.Generation(j) > g {
			stale++
		}
	}
	if replicated == 0 {
		return 0
	}
	return 100 * float64(stale) / float64(replicated)
}

// FormatDynamicRows renders the comparison as an aligned text table,
// one group per catalog.
func FormatDynamicRows(rows []DynamicRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dynamic catalogs: publish/perish churn vs the static baseline\n")
	fmt.Fprintf(&b, "(churn = per-live-site perish rate per request; 404%% = withdrawn content;\n")
	fmt.Fprintf(&b, " stale-redir%% = requests past dead-generation replicas; stale-place%% =\n")
	fmt.Fprintf(&b, " replicated sites whose content outlived their replicas at end of run)\n\n")
	fmt.Fprintf(&b, "%-9s %-18s %11s %7s %6s %6s %12s %12s %9s %11s\n",
		"churn", "mechanism", "meanRT(ms)", "hops", "hit%", "404%",
		"stale-redir%", "stale-place%", "turnover", "recon(app)")
	last := -1.0
	for _, r := range rows {
		if r.ChurnRate != last && last >= 0 {
			b.WriteByte('\n')
		}
		last = r.ChurnRate
		churn := "static"
		if r.ChurnRate > 0 {
			churn = fmt.Sprintf("%g", r.ChurnRate)
		}
		rec := "-"
		if r.Mechanism == MechControlled {
			rec = fmt.Sprintf("%d(%d)", r.Reconciles, r.Applied)
		}
		fmt.Fprintf(&b, "%-9s %-18s %11.2f %7.3f %6.1f %6.2f %12.2f %12.1f %9d %11s\n",
			churn, string(r.Mechanism), r.MeanRTMs, r.MeanHops, 100*r.HitRatio,
			r.PerishedPct, r.StaleRedirectPct, r.StalePlacementPct, r.Turnover, rec)
	}
	return b.String()
}
