package experiments

import (
	"context"
	"testing"
)

func TestDynamicComparisonQuick(t *testing.T) {
	opts := QuickOptions()
	opts.Sim.Requests = 20000
	opts.Sim.Warmup = 10000
	dyn := DefaultDynamicOptions()
	dyn.ChurnRates = []float64{0.0005}
	dyn.ReconcileEvery = 6000

	rows, err := DynamicComparison(context.Background(), opts, dyn)
	if err != nil {
		t.Fatal(err)
	}
	wantMechs := []Mechanism{MechCaching, MechReplication, MechHybrid, MechControlled}
	if len(rows) != 2*len(wantMechs) {
		t.Fatalf("%d rows, want %d (static + 1 churn rate, 4 mechanisms)", len(rows), 2*len(wantMechs))
	}
	for k, r := range rows {
		if r.Mechanism != wantMechs[k%len(wantMechs)] {
			t.Fatalf("row %d mechanism %q, want %q", k, r.Mechanism, wantMechs[k%len(wantMechs)])
		}
		if r.MeanRTMs <= 0 {
			t.Fatalf("row %d (%s churn %v): MeanRTMs = %v", k, r.Mechanism, r.ChurnRate, r.MeanRTMs)
		}
		if k < len(wantMechs) {
			// Static catalog: no churn artifacts of any kind.
			if r.ChurnRate != 0 || r.Turnover != 0 || r.PerishedPct != 0 ||
				r.StaleRedirectPct != 0 || r.StalePlacementPct != 0 {
				t.Fatalf("static row %d has churn artifacts: %+v", k, r)
			}
		} else {
			if r.ChurnRate != 0.0005 {
				t.Fatalf("row %d churn rate %v, want 0.0005", k, r.ChurnRate)
			}
			if r.Turnover == 0 {
				t.Fatalf("row %d (%s): no catalog turnover at churn 0.0005", k, r.Mechanism)
			}
		}
		if r.Mechanism == MechControlled {
			if want := int64((opts.Sim.Warmup + opts.Sim.Requests) / dyn.ReconcileEvery); r.Reconciles != want {
				t.Fatalf("controlled row %d ran %d reconciles, want %d", k, r.Reconciles, want)
			}
		} else if r.Reconciles != 0 || r.Applied != 0 {
			t.Fatalf("row %d (%s) reports reconciles without a controller", k, r.Mechanism)
		}
	}
	// The frozen hybrid's placement must look stale under churn while the
	// same run's caching row (no replicas) reports zero staleness.
	var hybridChurn, cachingChurn *DynamicRow
	for k := range rows {
		r := &rows[k]
		if r.ChurnRate > 0 {
			switch r.Mechanism {
			case MechHybrid:
				hybridChurn = r
			case MechCaching:
				cachingChurn = r
			}
		}
	}
	if hybridChurn.StalePlacementPct == 0 {
		t.Error("frozen hybrid placement shows zero staleness under heavy churn")
	}
	if cachingChurn.StalePlacementPct != 0 {
		t.Errorf("pure caching (no replicas) shows %v%% stale placement", cachingChurn.StalePlacementPct)
	}

	out := FormatDynamicRows(rows)
	if out == "" {
		t.Fatal("empty formatted table")
	}
}
