package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/fault"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// ChurnConfig shapes the availability-under-churn experiment: unlike the
// static AvailabilityComparison, components crash *and recover* while the
// measured phase is running, so the table shows how each mechanism rides
// through the outage rather than its steady degraded state.
type ChurnConfig struct {
	// ServerCrashes / OriginCrashes are how many distinct components of
	// each kind crash during the run.
	ServerCrashes, OriginCrashes int
	// DowntimeFrac is each outage's length as a fraction of the measured
	// phase (0 = never recovers).
	DowntimeFrac float64
}

// DefaultChurn crashes a fifth of the servers and one origin, each for a
// quarter of the measured phase.
func DefaultChurn() ChurnConfig {
	return ChurnConfig{ServerCrashes: 10, OriginCrashes: 1, DowntimeFrac: 0.25}
}

// ChurnRow is one mechanism's ride through the shared churn schedule.
type ChurnRow struct {
	Mechanism Mechanism
	// Served is the overall fraction of measured requests served.
	Served float64
	// WorstPhaseServed is the served fraction of the worst inter-event
	// phase — the depth of the availability dip.
	WorstPhaseServed float64
	StaleRiskFrac    float64
	MeanRTMs         float64
	// Phases is the per-phase breakdown (between consecutive events).
	Phases []sim.PhaseMetrics
}

// ChurnComparison runs every mechanism through one shared deterministic
// fault schedule (crashes and recoveries mid-measurement) and reports
// overall and worst-phase served fractions. It is the dynamic companion
// to AvailabilityComparison: the paper's §1 availability argument, under
// churn instead of permanent failure.
func ChurnComparison(ctx context.Context, opts Options, cfg ChurnConfig) ([]ChurnRow, error) {
	sc, err := scenario.Build(opts.Base)
	if err != nil {
		return nil, err
	}
	simCfg := opts.Sim
	simCfg.KeepResponseTimes = false
	simCfg.Parallelism = 1 // RunWithSchedule is sequential by design
	// Crash window: the middle of the measured phase, so every run has a
	// healthy head, a degraded middle, and (with recovery) a healed tail.
	downtime := int(float64(simCfg.Requests) * cfg.DowntimeFrac)
	sched, err := fault.Random(fault.RandomConfig{
		Servers:       sc.Sys.N(),
		Origins:       sc.Sys.M(),
		ServerCrashes: cfg.ServerCrashes,
		OriginCrashes: cfg.OriginCrashes,
		CrashFrom:     simCfg.Warmup + simCfg.Requests/10,
		CrashTo:       simCfg.Warmup + simCfg.Requests/2,
		Downtime:      downtime,
	}, xrand.New(opts.TraceSeed+0x9e3779b9))
	if err != nil {
		return nil, err
	}
	mechs := []Mechanism{MechReplication, MechCaching, MechHybrid}
	rows := make([]ChurnRow, len(mechs))
	err = parallelFor(len(mechs), func(mi int) error {
		mech := mechs[mi]
		p, useCache, _, err := buildPlacement(sc, mech, opts.Model)
		if err != nil {
			return err
		}
		runCfg := simCfg
		runCfg.UseCache = useCache
		m, err := sim.RunWithSchedule(ctx, sc, p, runCfg, sched, xrand.New(opts.TraceSeed))
		if err != nil {
			return err
		}
		worst := 1.0
		for _, ph := range m.Phases {
			if a := ph.Availability(); ph.Requests > 0 && a < worst {
				worst = a
			}
		}
		staleFrac := 0.0
		if m.Requests > 0 {
			staleFrac = float64(m.StaleRisk) / float64(m.Requests)
		}
		rows[mi] = ChurnRow{
			Mechanism:        mech,
			Served:           1 - m.Unavailability(),
			WorstPhaseServed: worst,
			StaleRiskFrac:    staleFrac,
			MeanRTMs:         m.MeanRTMs,
			Phases:           m.Phases,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatChurnRows renders the availability-under-churn comparison.
func FormatChurnRows(rows []ChurnRow) string {
	var b strings.Builder
	b.WriteString("availability under churn — crashes and recoveries mid-measurement\n")
	b.WriteString("mechanism         served  worst-phase  stale-risk  mean RT (ms)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %7.4f %12.4f %11.4f %13.2f\n",
			r.Mechanism, r.Served, r.WorstPhaseServed, r.StaleRiskFrac, r.MeanRTMs)
	}
	return b.String()
}
