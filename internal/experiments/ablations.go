package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/placement"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// The functions in this file go beyond the paper's figures: ablations of
// the design choices DESIGN.md §5 calls out. Each reuses the paper-scale
// machinery (same scenarios, same trace-driven simulator).

// PolicyRow is one line of the cache-policy ablation.
type PolicyRow struct {
	Policy   cache.Policy
	MeanRTMs float64
	HitRatio float64
}

// CachePolicyAblation runs the hybrid placement once and replays the
// identical trace under different cache replacement policies. The paper
// assumes "a simple LRU caching scheme"; this quantifies what that
// simplicity costs against LFU (frequency-optimal for static Zipf
// traffic) and what it gains over FIFO.
func CachePolicyAblation(ctx context.Context, opts Options) ([]PolicyRow, error) {
	cfg := opts.Base
	sc, err := scenario.Build(cfg)
	if err != nil {
		return nil, err
	}
	res, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
		Specs:          sc.Work.Specs(),
		AvgObjectBytes: sc.Work.AvgObjectBytes,
	})
	if err != nil {
		return nil, err
	}
	var rows []PolicyRow
	for _, pol := range []cache.Policy{
		cache.PolicyLRU, cache.PolicyFIFO, cache.PolicyLFU, cache.PolicyDelayedLRU,
	} {
		simCfg := opts.Sim
		simCfg.UseCache = true
		simCfg.Policy = pol
		simCfg.KeepResponseTimes = false
		m, err := sim.RunParallel(ctx, sc, res.Placement, simCfg, xrand.New(opts.TraceSeed))
		if err != nil {
			return nil, err
		}
		rows = append(rows, PolicyRow{Policy: pol, MeanRTMs: m.MeanRTMs, HitRatio: m.HitRatio()})
	}
	return rows, nil
}

// ThetaRow is one line of the Zipf-sensitivity ablation.
type ThetaRow struct {
	Theta    float64
	HybridMs float64
	AdHoc20  float64
	AdHoc80  float64
}

// ThetaSweep quantifies the §5.2 remark that "ad-hoc approaches are
// sensitive to changes in the Zipf parameter θ [while] the hybrid
// algorithm takes the Zipf parameter as input and defines a cache size
// that leads to higher performance": for each θ (in parallel) it
// compares the hybrid algorithm against both fixed splits.
func ThetaSweep(ctx context.Context, opts Options, thetas []float64) ([]ThetaRow, error) {
	rows := make([]ThetaRow, len(thetas))
	err := parallelFor(len(thetas), func(ti int) error {
		theta := thetas[ti]
		cfg := opts.Base
		cfg.Workload.Theta = theta
		sc, err := scenario.Build(cfg)
		if err != nil {
			return err
		}
		row := ThetaRow{Theta: theta}
		for _, mc := range []struct {
			out  *float64
			mech Mechanism
		}{
			{&row.HybridMs, MechHybrid},
			{&row.AdHoc20, MechAdHoc20},
			{&row.AdHoc80, MechAdHoc80},
		} {
			p, useCache, _, err := buildPlacement(sc, mc.mech, opts.Model)
			if err != nil {
				return err
			}
			simCfg := opts.Sim
			simCfg.UseCache = useCache
			simCfg.KeepResponseTimes = false
			m, err := sim.RunParallel(ctx, sc, p, simCfg, xrand.New(opts.TraceSeed))
			if err != nil {
				return err
			}
			*mc.out = m.MeanRTMs
		}
		rows[ti] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// PlacementRow is one line of the placement-heuristic ablation.
type PlacementRow struct {
	Name     string
	MeanRTMs float64
	MeanHops float64
	Replicas int
}

// PlacementAblation compares replica placement heuristics under identical
// caching (every server's leftover space is an LRU cache): the hybrid
// model-driven placement, greedy-global, local-popularity and random.
// It isolates how much of the hybrid gain comes from *where* replicas go
// versus merely having caches at all.
func PlacementAblation(ctx context.Context, opts Options) ([]PlacementRow, error) {
	sc, err := scenario.Build(opts.Base)
	if err != nil {
		return nil, err
	}
	builders := []struct {
		name  string
		build func() (*placement.Result, error)
	}{
		{"hybrid", func() (*placement.Result, error) {
			return placement.Hybrid(sc.Sys, placement.HybridConfig{
				Specs:          sc.Work.Specs(),
				AvgObjectBytes: sc.Work.AvgObjectBytes,
			})
		}},
		{"greedy-global", func() (*placement.Result, error) {
			return placement.GreedyGlobal(sc.Sys), nil
		}},
		{"greedy+exchange", func() (*placement.Result, error) {
			return placement.GreedyExchange(sc.Sys), nil
		}},
		{"popularity", func() (*placement.Result, error) {
			return placement.Popularity(sc.Sys), nil
		}},
		{"random", func() (*placement.Result, error) {
			return placement.Random(sc.Sys, xrand.New(opts.Base.Seed+1000)), nil
		}},
		{"none (cache only)", func() (*placement.Result, error) {
			return placement.None(sc.Sys), nil
		}},
	}
	var rows []PlacementRow
	for _, b := range builders {
		res, err := b.build()
		if err != nil {
			return nil, err
		}
		simCfg := opts.Sim
		simCfg.UseCache = true
		simCfg.KeepResponseTimes = false
		m, err := sim.RunParallel(ctx, sc, res.Placement, simCfg, xrand.New(opts.TraceSeed))
		if err != nil {
			return nil, err
		}
		rows = append(rows, PlacementRow{
			Name:     b.name,
			MeanRTMs: m.MeanRTMs,
			MeanHops: m.MeanHops,
			Replicas: res.Placement.Replicas(),
		})
	}
	return rows, nil
}

// FormatPolicyRows renders the cache-policy ablation.
func FormatPolicyRows(rows []PolicyRow) string {
	var b strings.Builder
	b.WriteString("Ablation — cache replacement policy under the hybrid placement\n")
	b.WriteString("policy        mean RT (ms)   hit ratio\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %12.2f %11.3f\n", r.Policy, r.MeanRTMs, r.HitRatio)
	}
	return b.String()
}

// FormatThetaRows renders the θ-sensitivity ablation.
func FormatThetaRows(rows []ThetaRow) string {
	var b strings.Builder
	b.WriteString("Ablation — Zipf θ sensitivity (mean RT, ms)\n")
	b.WriteString("theta     hybrid   cache-20%   cache-80%\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%5.2f %10.2f %11.2f %11.2f\n", r.Theta, r.HybridMs, r.AdHoc20, r.AdHoc80)
	}
	return b.String()
}

// FormatPlacementRows renders the placement-heuristic ablation.
func FormatPlacementRows(rows []PlacementRow) string {
	var b strings.Builder
	b.WriteString("Ablation — placement heuristics, all with LRU caches in free space\n")
	b.WriteString("placement           mean RT (ms)  cost (hops)  replicas\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-19s %12.2f %12.3f %9d\n", r.Name, r.MeanRTMs, r.MeanHops, r.Replicas)
	}
	return b.String()
}
