package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestAvailabilityComparison(t *testing.T) {
	opts := QuickOptions()
	opts.Sim.Requests = 50000
	opts.Sim.Warmup = 50000
	rows, err := AvailabilityComparison(context.Background(), opts, []int{0, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6 (3 mechanisms x 2 levels)", len(rows))
	}
	get := func(m Mechanism, k int) AvailabilityRow {
		for _, r := range rows {
			if r.Mechanism == m && r.FailedOrigins == k {
				return r
			}
		}
		t.Fatalf("row (%s, %d) missing", m, k)
		return AvailabilityRow{}
	}

	// With no failed origins nothing is unavailable.
	for _, m := range []Mechanism{MechReplication, MechCaching, MechHybrid} {
		if u := get(m, 0).Unavailability; u != 0 {
			t.Errorf("%s: unavailability %v with all origins up", m, u)
		}
	}
	// With failed origins, pure caching loses the most traffic, and the
	// hybrid (which holds real replicas) loses no more than caching.
	cach := get(MechCaching, 4)
	hyb := get(MechHybrid, 4)
	if cach.Unavailability == 0 {
		t.Error("caching fully available with 4 dead origins (suspicious)")
	}
	if hyb.Unavailability > cach.Unavailability {
		t.Errorf("hybrid unavailability %.4f worse than caching %.4f",
			hyb.Unavailability, cach.Unavailability)
	}
	// Replication keeps no caches, so it can never serve dead-origin
	// content at stale risk.
	if get(MechReplication, 4).StaleRiskFrac != 0 {
		t.Error("pure replication reported stale-risk serves")
	}

	if out := FormatAvailabilityRows(rows); !strings.Contains(out, "unavailable") {
		t.Error("formatting lost the header")
	}
}
