package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/placement"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// UpdateRow is one write-intensity level of the read+update sweep.
type UpdateRow struct {
	// UpdateRatio is the update volume relative to each site's read
	// volume (0 = the paper's read-only setting).
	UpdateRatio float64
	// HybridReadHops / GreedyReadHops are the simulated read costs.
	HybridReadHops, GreedyReadHops float64
	// HybridUpdateHops / GreedyUpdateHops are the analytic update
	// propagation costs per request.
	HybridUpdateHops, GreedyUpdateHops float64
	// HybridReplicas / GreedyReplicas count the placed replicas.
	HybridReplicas, GreedyReplicas int
	// CachingReadHops is the replica-free baseline (no update cost).
	CachingReadHops float64
}

// HybridTotal is the hybrid's read+update cost per request.
func (r UpdateRow) HybridTotal() float64 { return r.HybridReadHops + r.HybridUpdateHops }

// GreedyTotal is greedy-global's read+update cost per request.
func (r UpdateRow) GreedyTotal() float64 { return r.GreedyReadHops + r.GreedyUpdateHops }

// UpdateSweep extends the paper to the read-plus-update FAP objective of
// §2.2 ([19, 28]): as sites take writes, every replica pays propagation
// cost, replicas become less attractive, and both update-aware
// algorithms should retreat toward caching — which pays no propagation
// (cache freshness is the λ mechanism of §3.3).
func UpdateSweep(ctx context.Context, opts Options, ratios []float64) ([]UpdateRow, error) {
	sc, err := scenario.Build(opts.Base)
	if err != nil {
		return nil, err
	}
	// Site read volumes: column sums of the demand matrix.
	readVolume := make([]float64, sc.Sys.M())
	for i := range sc.Sys.Demand {
		for j, d := range sc.Sys.Demand[i] {
			readVolume[j] += d
		}
	}
	// Caching baseline is update-independent: run it once.
	pure := placement.None(sc.Sys)
	simCfg := opts.Sim
	simCfg.UseCache = true
	simCfg.KeepResponseTimes = false
	mPure, err := sim.RunParallel(ctx, sc, pure.Placement, simCfg, xrand.New(opts.TraceSeed))
	if err != nil {
		return nil, err
	}

	rows := make([]UpdateRow, len(ratios))
	err = parallelFor(len(ratios), func(ri int) error {
		ratio := ratios[ri]
		rates := make([]float64, sc.Sys.M())
		for j := range rates {
			rates[j] = ratio * readVolume[j]
		}
		hyb, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
			Specs:          sc.Work.Specs(),
			AvgObjectBytes: sc.Work.AvgObjectBytes,
			UpdateRates:    rates,
		})
		if err != nil {
			return err
		}
		greedy := placement.GreedyGlobalUpdates(sc.Sys, rates)

		cfgCache := opts.Sim
		cfgCache.UseCache = true
		cfgCache.KeepResponseTimes = false
		mHyb, err := sim.RunParallel(ctx, sc, hyb.Placement, cfgCache, xrand.New(opts.TraceSeed))
		if err != nil {
			return err
		}
		cfgNoCache := cfgCache
		cfgNoCache.UseCache = false
		mGreedy, err := sim.RunParallel(ctx, sc, greedy.Placement, cfgNoCache, xrand.New(opts.TraceSeed))
		if err != nil {
			return err
		}
		rows[ri] = UpdateRow{
			UpdateRatio:      ratio,
			HybridReadHops:   mHyb.MeanHops,
			GreedyReadHops:   mGreedy.MeanHops,
			HybridUpdateHops: hyb.Placement.UpdateCost(rates),
			GreedyUpdateHops: greedy.Placement.UpdateCost(rates),
			HybridReplicas:   hyb.Placement.Replicas(),
			GreedyReplicas:   greedy.Placement.Replicas(),
			CachingReadHops:  mPure.MeanHops,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatUpdateRows renders the read+update sweep.
func FormatUpdateRows(rows []UpdateRow) string {
	var b strings.Builder
	b.WriteString("§2.2 extended — read+update objective (hops/request; caching baseline pays no updates)\n")
	b.WriteString("u/r     hybrid(read+upd=total)   #rep   greedy(read+upd=total)   #rep   caching\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6.2f %7.3f+%6.3f=%7.3f %6d %8.3f+%6.3f=%7.3f %6d %9.3f\n",
			r.UpdateRatio,
			r.HybridReadHops, r.HybridUpdateHops, r.HybridTotal(), r.HybridReplicas,
			r.GreedyReadHops, r.GreedyUpdateHops, r.GreedyTotal(), r.GreedyReplicas,
			r.CachingReadHops)
	}
	return b.String()
}
