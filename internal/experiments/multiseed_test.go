package experiments

import (
	"context"
	"math"
	"strings"
	"testing"
)

func TestSummaryOverSeeds(t *testing.T) {
	opts := QuickOptions()
	opts.Sim.Requests = 40000
	opts.Sim.Warmup = 40000
	rows, err := SummaryOverSeeds(context.Background(), opts, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d settings, want 4", len(rows))
	}
	for _, g := range rows {
		if g.Seeds != 3 {
			t.Fatalf("setting (%d,%d): %d seeds", g.CapacityPct, g.LambdaPct, g.Seeds)
		}
		// The hybrid's advantage over replication must survive
		// averaging over instances.
		if g.VsReplicationMean <= 0 {
			t.Errorf("setting (%d,%d): mean gain vs replication %.1f%%",
				g.CapacityPct, g.LambdaPct, g.VsReplicationMean)
		}
		if g.VsReplicationStd < 0 || g.VsCachingStd < 0 {
			t.Error("negative standard deviation")
		}
	}
	if out := FormatGainStats(rows); !strings.Contains(out, "seeds") {
		t.Error("formatting lost the header")
	}
}

func TestSummaryOverSeedsRejectsEmpty(t *testing.T) {
	if _, err := SummaryOverSeeds(context.Background(), QuickOptions(), nil); err == nil {
		t.Fatal("empty seed list accepted")
	}
}

func TestMeanStd(t *testing.T) {
	m, s := meanStd([]float64{2, 4, 6})
	if m != 4 {
		t.Fatalf("mean %v", m)
	}
	if math.Abs(s-2) > 1e-12 {
		t.Fatalf("std %v, want 2", s)
	}
	if m, s := meanStd(nil); m != 0 || s != 0 {
		t.Fatal("empty input not zeroed")
	}
	if m, s := meanStd([]float64{7}); m != 7 || s != 0 {
		t.Fatal("single sample mishandled")
	}
}
