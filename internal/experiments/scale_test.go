package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestScaleComparison(t *testing.T) {
	opts := QuickOptions()
	opts.Sim.Requests = 30000
	opts.Sim.Warmup = 15000
	rows, err := ScaleComparison(context.Background(), opts, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for i, r := range rows {
		want := 1 << i // factors 1, 2
		if r.Factor != want {
			t.Fatalf("row %d factor %d, want %d", i, r.Factor, want)
		}
		if r.ReplicationRTMs <= 0 || r.CachingRTMs <= 0 || r.HybridRTMs <= 0 {
			t.Fatalf("factor %d: non-positive response times: %+v", r.Factor, r)
		}
		if r.SimReqPerSec <= 0 || r.PlaceMs < 0 || r.BuildMs < 0 {
			t.Fatalf("factor %d: bad engineering metrics: %+v", r.Factor, r)
		}
		// The hybrid must not lose to the better single mechanism by
		// more than noise — the paper's core claim, which this sweep
		// checks away from paper scale.
		best := r.ReplicationRTMs
		if r.CachingRTMs < best {
			best = r.CachingRTMs
		}
		if r.HybridRTMs > best*1.05 {
			t.Fatalf("factor %d: hybrid RT %.2f worse than best mechanism %.2f", r.Factor, r.HybridRTMs, best)
		}
	}
	// Growth sanity: factor 2 doubles servers and sites.
	if rows[1].Servers != 2*rows[0].Servers || rows[1].Sites != 2*rows[0].Sites {
		t.Fatalf("factor 2 did not double the instance: %+v vs %+v", rows[1], rows[0])
	}
	if rows[1].Nodes <= rows[0].Nodes {
		t.Fatalf("factor 2 did not grow the topology: %d vs %d nodes", rows[1].Nodes, rows[0].Nodes)
	}

	out := FormatScaleRows(rows)
	if !strings.Contains(out, "scale sweep") || len(strings.Split(strings.TrimSpace(out), "\n")) != 4 {
		t.Fatalf("unexpected formatting:\n%s", out)
	}
}
