package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/placement"
	"repro/internal/redirect"
	"repro/internal/scenario"
	"repro/internal/xrand"
)

// RedirectRow is one redirection policy's measurement.
type RedirectRow struct {
	Policy      redirect.Policy
	MeanRTMs    float64
	MeanQueueMs float64
	MeanHops    float64
	MaxShare    float64
	ShareCV     float64
	Detours     int64
}

// RedirectionComparison explores the §2.2 design axis the paper holds
// fixed ("where to redirect a client request"): under a replica-rich
// greedy-global deployment with constrained server capacity, it compares
// nearest-replica redirection (the paper's SN) against load-aware
// selection ([9]-style) and blind rotation.
func RedirectionComparison(ctx context.Context, opts Options) ([]RedirectRow, error) {
	sc, err := scenario.Build(opts.Base)
	if err != nil {
		return nil, err
	}
	p := placement.GreedyGlobal(sc.Sys).Placement

	policies := []redirect.Policy{redirect.Nearest, redirect.LoadAware, redirect.Spread}
	rows := make([]RedirectRow, len(policies))
	err = parallelFor(len(policies), func(pi int) error {
		cfg := redirect.DefaultConfig()
		cfg.Policy = policies[pi]
		cfg.Requests = opts.Sim.Requests
		cfg.Warmup = opts.Sim.Warmup
		cfg.FirstHopMs = opts.Sim.FirstHopMs
		cfg.PerHopMs = opts.Sim.PerHopMs
		cfg.CapacityFactor = 1.0 // tight: hotspots hurt
		cfg.ServiceMs = 10
		cfg.SlackHops = 6
		cfg.UseCache = false
		m, err := redirect.Run(sc, p, cfg, xrand.New(opts.TraceSeed))
		if err != nil {
			return err
		}
		rows[pi] = RedirectRow{
			Policy:      policies[pi],
			MeanRTMs:    m.MeanRTMs,
			MeanQueueMs: m.MeanQueueMs,
			MeanHops:    m.MeanHops,
			MaxShare:    m.MaxShare,
			ShareCV:     m.ShareCV,
			Detours:     m.Detours,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatRedirectRows renders the redirection comparison.
func FormatRedirectRows(rows []RedirectRow) string {
	var b strings.Builder
	b.WriteString("§2.2 design axis — redirection policies under greedy-global replicas\n")
	b.WriteString("policy       mean RT (ms)  queue (ms)   hops  max-share  share-CV  detours\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %12.2f %11.2f %6.3f %10.3f %9.3f %8d\n",
			r.Policy, r.MeanRTMs, r.MeanQueueMs, r.MeanHops, r.MaxShare, r.ShareCV, r.Detours)
	}
	return b.String()
}
