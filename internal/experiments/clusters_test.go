package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestClusterComparison(t *testing.T) {
	opts := QuickOptions()
	opts.Sim.Requests = 60000
	opts.Sim.Warmup = 60000
	rows, err := ClusterComparison(context.Background(), opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]ClusterRow{}
	for _, r := range rows {
		if r.MeanRTMs <= 0 {
			t.Fatalf("%s: empty row", r.Name)
		}
		byName[r.Name] = r
	}

	site := byName["replication/site"]
	clus := byName["replication/cluster"]
	hybS := byName["hybrid/site"]
	hybC := byName["hybrid/cluster"]

	// [6]'s result: cluster-grain replication beats per-site
	// replication (finer units use the same storage better).
	if clus.MeanRTMs >= site.MeanRTMs {
		t.Errorf("cluster replication %.2f not better than site replication %.2f",
			clus.MeanRTMs, site.MeanRTMs)
	}
	// The granularity-matched form of the paper's §5.3 claim: the
	// hybrid principle wins against pure replication at the same
	// granularity. (The literal site-hybrid vs cluster-replication
	// comparison flips with fine clustering; see EXPERIMENTS.md.)
	if hybC.MeanRTMs >= clus.MeanRTMs {
		t.Errorf("cluster hybrid %.2f not better than cluster replication %.2f",
			hybC.MeanRTMs, clus.MeanRTMs)
	}
	// Finer placement units can only help the hybrid too.
	if hybC.MeanRTMs >= hybS.MeanRTMs {
		t.Errorf("cluster hybrid %.2f not better than site hybrid %.2f",
			hybC.MeanRTMs, hybS.MeanRTMs)
	}
	// Cluster replication must create more (smaller) replicas than
	// site replication under the same storage.
	if clus.Replicas <= site.Replicas {
		t.Errorf("cluster replicas %d not more numerous than site replicas %d",
			clus.Replicas, site.Replicas)
	}

	if out := FormatClusterRows(rows, 4); !strings.Contains(out, "hybrid/cluster") {
		t.Error("formatting lost rows")
	}
}

func TestClusterComparisonRejectsBadCount(t *testing.T) {
	if _, err := ClusterComparison(context.Background(), QuickOptions(), 0); err == nil {
		t.Fatal("perSite=0 accepted")
	}
}
