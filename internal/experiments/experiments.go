// Package experiments reproduces §5 of the paper: each Figure function
// regenerates the data series of the corresponding figure — the
// response-time CDFs of Figures 3–5, the predicted-vs-actual cost bars of
// Figure 6, and the §5.2 headline latency-gain summary.
//
// All mechanisms in one panel are simulated against the same request
// trace (identical stream seed), mirroring the paper's trace-driven
// comparison.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// parallelFor runs f(0..n-1) concurrently and returns the first error.
// Every unit of work in this package owns its RNG streams (seeded, not
// shared), so parallel execution is bit-identical to sequential.
func parallelFor(n int, f func(i int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = f(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Mechanism names a content-delivery configuration of §5.2.
type Mechanism string

// The mechanisms compared in the paper's figures.
const (
	MechReplication Mechanism = "replication" // greedy-global, no caching
	MechCaching     Mechanism = "caching"     // no replicas, all storage cache
	MechHybrid      Mechanism = "hybrid"      // Figure 2 algorithm
	MechAdHoc20     Mechanism = "cache-20%"   // fixed 20% cache + greedy-global
	MechAdHoc80     Mechanism = "cache-80%"   // fixed 80% cache + greedy-global
)

// Options scales an experiment run. Zero value is unusable; start from
// DefaultOptions (paper scale) or QuickOptions (CI scale).
type Options struct {
	// Base is the scenario template; each panel overrides
	// CapacityFrac and the workload λ as the figure demands.
	Base scenario.Config
	// Sim configures the trace-driven simulation of each mechanism.
	Sim sim.Config
	// GridMaxMs / GridSteps shape the printed CDF grid.
	GridMaxMs float64
	GridSteps int
	// TraceSeed drives request sampling (identical across mechanisms).
	TraceSeed uint64
	// Model selects the analytical hit-ratio model the hybrid placement
	// optimizes with ("eq1", "che", "closedform", "random"); empty means
	// eq1, the paper's own model.
	Model string
}

// DefaultOptions reproduces the paper's scale: 50 servers, 20 sites,
// ~560-node topology, 500k measured requests.
func DefaultOptions() Options {
	return Options{
		Base:      scenario.Default(),
		Sim:       sim.DefaultConfig(),
		GridMaxMs: 400,
		GridSteps: 20,
		TraceSeed: 99,
	}
}

// QuickOptions shrinks everything for tests and smoke runs: 10 servers,
// 8 sites, small topology, 80k measured requests.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Base.Topology.TransitDomains = 1
	o.Base.Topology.TransitNodesPerDomain = 2
	o.Base.Topology.StubsPerTransitNode = 3
	o.Base.Topology.StubNodesPerStub = 5
	// Keep M large enough that a site (~1/M of the total bytes) fits
	// within the smallest capacity setting (5%), as at paper scale.
	o.Base.Workload.Servers = 10
	o.Base.Workload.LowSites = 4
	o.Base.Workload.MediumSites = 8
	o.Base.Workload.HighSites = 4
	o.Base.Workload.ObjectsPerSite = 120
	o.Sim.Requests = 80000
	o.Sim.Warmup = 40000
	return o
}

// Series is one mechanism's measured curve in a panel.
type Series struct {
	Mechanism     Mechanism
	CDF           []stats.CDFPoint
	MeanRTMs      float64
	MeanHops      float64
	HitRatio      float64
	LocalFraction float64
	Replicas      int
	PredictedCost float64 // model-predicted hops/request (hybrid only; else no-cache prediction)
}

// Panel is one sub-figure: a parameter setting with one Series per
// mechanism.
type Panel struct {
	ID           string // e.g. "fig3a"
	Title        string
	CapacityFrac float64
	Lambda       float64
	Series       []Series
}

// buildPlacement constructs the placement for a mechanism on a scenario,
// and reports whether the simulator should enable caches. model selects
// the hybrid's analytical hit-ratio model (empty = eq1).
func buildPlacement(sc *scenario.Scenario, mech Mechanism, model string) (*core.Placement, bool, float64, error) {
	switch mech {
	case MechReplication:
		res := placement.GreedyGlobal(sc.Sys)
		return res.Placement, false, res.PredictedCost, nil
	case MechCaching:
		res := placement.None(sc.Sys)
		return res.Placement, true, res.PredictedCost, nil
	case MechHybrid:
		res, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
			Specs:          sc.Work.Specs(),
			AvgObjectBytes: sc.Work.AvgObjectBytes,
			Model:          model,
		})
		if err != nil {
			return nil, false, 0, err
		}
		return res.Placement, true, res.PredictedCost, nil
	case MechAdHoc20:
		res, err := placement.AdHoc(sc.Sys, 0.20)
		if err != nil {
			return nil, false, 0, err
		}
		return res.Placement, true, res.PredictedCost, nil
	case MechAdHoc80:
		res, err := placement.AdHoc(sc.Sys, 0.80)
		if err != nil {
			return nil, false, 0, err
		}
		return res.Placement, true, res.PredictedCost, nil
	default:
		return nil, false, 0, fmt.Errorf("experiments: unknown mechanism %q", mech)
	}
}

// runPanel simulates the given mechanisms on one parameter setting.
func runPanel(ctx context.Context, opts Options, id, title string, capacityFrac, lambda float64, mechs []Mechanism) (Panel, error) {
	cfg := opts.Base
	cfg.CapacityFrac = capacityFrac
	cfg.Workload.Lambda = lambda
	sc, err := scenario.Build(cfg)
	if err != nil {
		return Panel{}, err
	}
	panel := Panel{ID: id, Title: title, CapacityFrac: capacityFrac, Lambda: lambda}
	panel.Series = make([]Series, len(mechs))
	// Mechanisms are independent given the shared read-only scenario;
	// run them in parallel on identical trace seeds.
	err = parallelFor(len(mechs), func(mi int) error {
		mech := mechs[mi]
		p, useCache, predicted, err := buildPlacement(sc, mech, opts.Model)
		if err != nil {
			return err
		}
		simCfg := opts.Sim
		simCfg.UseCache = useCache
		m, err := sim.RunParallel(ctx, sc, p, simCfg, xrand.New(opts.TraceSeed))
		if err != nil {
			return err
		}
		panel.Series[mi] = Series{
			Mechanism:     mech,
			CDF:           m.CDF().Grid(opts.GridMaxMs, opts.GridSteps),
			MeanRTMs:      m.MeanRTMs,
			MeanHops:      m.MeanHops,
			HitRatio:      m.HitRatio(),
			LocalFraction: m.LocalFraction(),
			Replicas:      p.Replicas(),
			PredictedCost: predicted,
		}
		return nil
	})
	if err != nil {
		return Panel{}, err
	}
	return panel, nil
}

// Figure3 regenerates the λ=0 mechanism comparison: response-time CDFs
// of replication, caching and hybrid at 5% (a) and 10% (b) capacity.
func Figure3(ctx context.Context, opts Options) ([]Panel, error) {
	mechs := []Mechanism{MechReplication, MechCaching, MechHybrid}
	a, err := runPanel(ctx, opts, "fig3a", "Mechanism comparison, λ=0, 5% capacity", 0.05, 0, mechs)
	if err != nil {
		return nil, err
	}
	b, err := runPanel(ctx, opts, "fig3b", "Mechanism comparison, λ=0, 10% capacity", 0.10, 0, mechs)
	if err != nil {
		return nil, err
	}
	return []Panel{a, b}, nil
}

// Figure4 is Figure 3 with 10% stale documents under strong consistency
// (λ = 0.1): cached pages must be refreshed while replicas stay local.
func Figure4(ctx context.Context, opts Options) ([]Panel, error) {
	mechs := []Mechanism{MechReplication, MechCaching, MechHybrid}
	a, err := runPanel(ctx, opts, "fig4a", "Mechanism comparison, λ=0.1, 5% capacity", 0.05, 0.1, mechs)
	if err != nil {
		return nil, err
	}
	b, err := runPanel(ctx, opts, "fig4b", "Mechanism comparison, λ=0.1, 10% capacity", 0.10, 0.1, mechs)
	if err != nil {
		return nil, err
	}
	return []Panel{a, b}, nil
}

// Figure5 compares the hybrid algorithm against the ad-hoc fixed splits
// (20% and 80% cache) at 5% capacity, for λ=0 (a) and λ=0.1 (b).
func Figure5(ctx context.Context, opts Options) ([]Panel, error) {
	mechs := []Mechanism{MechHybrid, MechAdHoc20, MechAdHoc80}
	a, err := runPanel(ctx, opts, "fig5a", "Hybrid vs ad-hoc splits, λ=0, 5% capacity", 0.05, 0, mechs)
	if err != nil {
		return nil, err
	}
	b, err := runPanel(ctx, opts, "fig5b", "Hybrid vs ad-hoc splits, λ=0.1, 5% capacity", 0.05, 0.1, mechs)
	if err != nil {
		return nil, err
	}
	return []Panel{a, b}, nil
}

// Fig6Row is one bar pair of Figure 6: the hybrid algorithm's
// model-predicted cost per request versus the trace-driven measurement.
type Fig6Row struct {
	CapacityPct int
	LambdaPct   int
	Predicted   float64 // hops per request
	Actual      float64
}

// ErrPct is the relative prediction error in percent (positive =
// overestimate, the direction the paper reports for large buffers).
func (r Fig6Row) ErrPct() float64 {
	if r.Actual == 0 {
		return 0
	}
	return 100 * (r.Predicted - r.Actual) / r.Actual
}

// Figure6 regenerates the model-accuracy experiment: for each
// (capacity%, uncacheable%) setting, run the hybrid algorithm, take its
// predicted cost, and compare with the simulated cost per request.
// Settings are independent and run in parallel.
func Figure6(ctx context.Context, opts Options) ([]Fig6Row, error) {
	settings := []struct{ capPct, lamPct int }{
		{5, 0}, {10, 0}, {20, 0}, {5, 10}, {10, 10}, {20, 10},
	}
	rows := make([]Fig6Row, len(settings))
	err := parallelFor(len(settings), func(si int) error {
		setting := settings[si]
		cfg := opts.Base
		cfg.CapacityFrac = float64(setting.capPct) / 100
		cfg.Workload.Lambda = float64(setting.lamPct) / 100
		sc, err := scenario.Build(cfg)
		if err != nil {
			return err
		}
		res, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
			Specs:          sc.Work.Specs(),
			AvgObjectBytes: sc.Work.AvgObjectBytes,
			Model:          opts.Model,
		})
		if err != nil {
			return err
		}
		simCfg := opts.Sim
		simCfg.UseCache = true
		simCfg.KeepResponseTimes = false
		m, err := sim.RunParallel(ctx, sc, res.Placement, simCfg, xrand.New(opts.TraceSeed))
		if err != nil {
			return err
		}
		rows[si] = Fig6Row{
			CapacityPct: setting.capPct,
			LambdaPct:   setting.lamPct,
			Predicted:   res.PredictedCost,
			Actual:      m.MeanHops,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// GainRow is one line of the §5.2 headline summary: the hybrid scheme's
// mean-latency gain over each stand-alone mechanism.
type GainRow struct {
	CapacityPct   int
	LambdaPct     int
	ReplicationMs float64
	CachingMs     float64
	HybridMs      float64
}

// VsReplicationPct is the latency reduction versus pure replication (the
// paper reports ~40% at λ=0 and ~30% at λ=0.1).
func (g GainRow) VsReplicationPct() float64 {
	if g.ReplicationMs == 0 {
		return 0
	}
	return 100 * (g.ReplicationMs - g.HybridMs) / g.ReplicationMs
}

// VsCachingPct is the latency reduction versus pure caching (~15% at λ=0,
// ~20% at λ=0.1 in the paper).
func (g GainRow) VsCachingPct() float64 {
	if g.CachingMs == 0 {
		return 0
	}
	return 100 * (g.CachingMs - g.HybridMs) / g.CachingMs
}

// Summary computes the headline gains across the Figures 3–4 settings.
func Summary(ctx context.Context, opts Options) ([]GainRow, error) {
	var rows []GainRow
	for _, setting := range []struct {
		capPct, lamPct int
	}{
		{5, 0}, {10, 0}, {5, 10}, {10, 10},
	} {
		panel, err := runPanel(ctx, opts, "summary", "",
			float64(setting.capPct)/100, float64(setting.lamPct)/100,
			[]Mechanism{MechReplication, MechCaching, MechHybrid})
		if err != nil {
			return nil, err
		}
		row := GainRow{CapacityPct: setting.capPct, LambdaPct: setting.lamPct}
		for _, s := range panel.Series {
			switch s.Mechanism {
			case MechReplication:
				row.ReplicationMs = s.MeanRTMs
			case MechCaching:
				row.CachingMs = s.MeanRTMs
			case MechHybrid:
				row.HybridMs = s.MeanRTMs
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatPanel renders a panel as the text table the CLI prints: one
// column of response-time grid points, one CDF column per mechanism,
// then the per-mechanism summary lines.
func FormatPanel(p Panel) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", p.ID, p.Title)
	fmt.Fprintf(&b, "%-10s", "ms")
	for _, s := range p.Series {
		fmt.Fprintf(&b, "%14s", s.Mechanism)
	}
	b.WriteByte('\n')
	if len(p.Series) > 0 {
		for gi := range p.Series[0].CDF {
			fmt.Fprintf(&b, "%-10.0f", p.Series[0].CDF[gi].X)
			for _, s := range p.Series {
				fmt.Fprintf(&b, "%14.3f", s.CDF[gi].Frac)
			}
			b.WriteByte('\n')
		}
	}
	for _, s := range p.Series {
		fmt.Fprintf(&b, "%-14s mean RT %7.2f ms | mean cost %6.3f hops | hit ratio %5.3f | local %5.3f | replicas %d\n",
			s.Mechanism, s.MeanRTMs, s.MeanHops, s.HitRatio, s.LocalFraction, s.Replicas)
	}
	return b.String()
}

// FormatFig6 renders the Figure 6 rows.
func FormatFig6(rows []Fig6Row) string {
	var b strings.Builder
	b.WriteString("Figure 6 — LRU model accuracy (avg cost per request, hops)\n")
	b.WriteString("capacity%  uncacheable%   predicted     actual     err%\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %13d %11.3f %10.3f %8.2f\n",
			r.CapacityPct, r.LambdaPct, r.Predicted, r.Actual, r.ErrPct())
	}
	return b.String()
}

// FormatSummary renders the headline gain rows.
func FormatSummary(rows []GainRow) string {
	var b strings.Builder
	b.WriteString("§5.2 headline — hybrid mean-latency gains\n")
	b.WriteString("capacity%  λ%   replication(ms)  caching(ms)  hybrid(ms)   vs-repl%  vs-cache%\n")
	for _, g := range rows {
		fmt.Fprintf(&b, "%8d %4d %16.2f %12.2f %11.2f %10.1f %10.1f\n",
			g.CapacityPct, g.LambdaPct, g.ReplicationMs, g.CachingMs, g.HybridMs,
			g.VsReplicationPct(), g.VsCachingPct())
	}
	return b.String()
}
