package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/dynamic"
	"repro/internal/scenario"
)

// DriftRow summarizes one strategy over the drifting workload.
type DriftRow struct {
	Strategy            dynamic.Strategy
	MeanRTMs            float64
	FirstEpochRTMs      float64
	LastEpochRTMs       float64
	TotalTransferGBHops float64
}

// DriftComparison grounds the paper's §2.1 motivation: under popularity
// drift, static replica placements decay while caches adapt for free,
// and adaptive re-placement buys latency only by hauling replicas around
// the network. All strategies see the identical drift and trace
// sequences.
func DriftComparison(ctx context.Context, opts Options, cfg dynamic.Config) ([]DriftRow, error) {
	sc, err := scenario.Build(opts.Base)
	if err != nil {
		return nil, err
	}
	strategies := []dynamic.Strategy{
		dynamic.Caching,
		dynamic.StaticReplication,
		dynamic.StaticHybrid,
		dynamic.AdaptiveReplication,
		dynamic.AdaptiveHybrid,
	}
	rows := make([]DriftRow, len(strategies))
	err = parallelFor(len(strategies), func(si int) error {
		res, err := dynamic.Run(ctx, sc, strategies[si], cfg, opts.TraceSeed)
		if err != nil {
			return err
		}
		rows[si] = DriftRow{
			Strategy:            res.Strategy,
			MeanRTMs:            res.MeanRTMs,
			FirstEpochRTMs:      res.Epochs[0].MeanRTMs,
			LastEpochRTMs:       res.Epochs[len(res.Epochs)-1].MeanRTMs,
			TotalTransferGBHops: res.TotalTransferGBHops,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatDriftRows renders the drift comparison.
func FormatDriftRows(rows []DriftRow, cfg dynamic.Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§2.1 grounded — popularity drift over %d epochs (σ=%.1f per epoch)\n",
		cfg.Epochs, cfg.Drift)
	b.WriteString("strategy               mean RT (ms)  epoch0 RT  epochN RT  transfer (GB·hops)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %12.2f %10.2f %10.2f %19.2f\n",
			r.Strategy, r.MeanRTMs, r.FirstEpochRTMs, r.LastEpochRTMs, r.TotalTransferGBHops)
	}
	return b.String()
}
