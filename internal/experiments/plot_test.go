package experiments

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func syntheticPanel() Panel {
	mk := func(mech Mechanism, fracs []float64, mean float64) Series {
		cdf := make([]stats.CDFPoint, len(fracs))
		for i, f := range fracs {
			cdf[i] = stats.CDFPoint{X: float64(i * 20), Frac: f}
		}
		return Series{Mechanism: mech, CDF: cdf, MeanRTMs: mean}
	}
	return Panel{
		ID:    "figX",
		Title: "synthetic",
		Series: []Series{
			mk(MechReplication, []float64{0, 0.1, 0.3, 0.6, 0.9, 1, 1, 1, 1, 1, 1}, 70),
			mk(MechCaching, []float64{0, 0.6, 0.62, 0.65, 0.7, 0.8, 0.9, 0.95, 0.98, 1, 1}, 60),
			mk(MechHybrid, []float64{0, 0.58, 0.6, 0.7, 0.85, 0.95, 1, 1, 1, 1, 1}, 50),
		},
	}
}

func TestFormatPanelPlot(t *testing.T) {
	out := FormatPanelPlot(syntheticPanel())
	for _, want := range []string{"figX", "1.00 |", "0.00 |", "ms", "r = replication", "c = caching", "h = hybrid"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	// Every series glyph must appear in the grid body.
	body := out[:strings.Index(out, "      +")]
	for _, sym := range []string{"r", "c", "h"} {
		if !strings.Contains(body, sym) {
			t.Errorf("glyph %q never plotted", sym)
		}
	}
	// Line count sanity: 21 grid rows + axes + legend.
	if lines := strings.Count(out, "\n"); lines < 25 {
		t.Errorf("plot has only %d lines", lines)
	}
}

func TestFormatPanelPlotEmpty(t *testing.T) {
	out := FormatPanelPlot(Panel{ID: "empty"})
	if !strings.Contains(out, "no data") {
		t.Errorf("empty panel output %q", out)
	}
}
