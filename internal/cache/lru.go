package cache

// LRU is a byte-capacity least-recently-used cache: the replacement policy
// the paper models analytically (§3.2, Figure 1) and simulates (§5).
// A Get moves the object to the most-recent position; evictions take the
// least recently used object first.
type LRU struct {
	capacity int64
	used     int64
	items    map[Key]*entry
	order    list
	free     freelist
	stats    Stats
}

var _ Cache = (*LRU)(nil)

// NewLRU returns an LRU cache bounded to capacity bytes. A zero or
// negative capacity yields a cache on which every Get misses and every
// Put is rejected, which is exactly the pure-replication configuration.
func NewLRU(capacity int64) *LRU {
	c := &LRU{capacity: capacity, items: make(map[Key]*entry)}
	c.order.init()
	return c
}

// Get implements Cache.
func (c *LRU) Get(k Key) bool {
	if e, ok := c.items[k]; ok {
		c.order.moveToBack(e)
		c.stats.Hits++
		return true
	}
	c.stats.Misses++
	return false
}

// Put implements Cache.
func (c *LRU) Put(k Key, size int64) {
	validateSize(size)
	if e, ok := c.items[k]; ok {
		c.used += size - e.size
		e.size = size
		c.order.moveToBack(e)
		c.evictUntilFits()
		return
	}
	if size > c.capacity {
		c.stats.Rejections++
		return
	}
	e := c.free.get(k, size)
	c.items[k] = e
	c.order.pushBack(e)
	c.used += size
	c.stats.Insertions++
	c.evictUntilFits()
}

func (c *LRU) evictUntilFits() {
	for c.used > c.capacity {
		victim := c.order.front()
		if victim == nil {
			return
		}
		c.order.remove(victim)
		delete(c.items, victim.key)
		c.used -= victim.size
		c.stats.Evictions++
		c.free.put(victim)
	}
}

// Contains implements Cache.
func (c *LRU) Contains(k Key) bool {
	_, ok := c.items[k]
	return ok
}

// Remove implements Cache.
func (c *LRU) Remove(k Key) {
	if e, ok := c.items[k]; ok {
		c.order.remove(e)
		delete(c.items, k)
		c.used -= e.size
		c.free.put(e)
	}
}

// Len implements Cache.
func (c *LRU) Len() int { return len(c.items) }

// Used implements Cache.
func (c *LRU) Used() int64 { return c.used }

// Capacity implements Cache.
func (c *LRU) Capacity() int64 { return c.capacity }

// Resize implements Cache.
func (c *LRU) Resize(capacity int64) {
	c.capacity = capacity
	c.evictUntilFits()
}

// Clear implements Cache.
func (c *LRU) Clear() {
	c.items = make(map[Key]*entry)
	c.order.init()
	c.free = freelist{}
	c.used = 0
	c.stats = Stats{}
}

// Stats implements Cache.
func (c *LRU) Stats() Stats { return c.stats }

// VictimOrder returns the cached keys from next-evicted to most recently
// used. It exposes the LRU stack of Figure 1 for tests and for the model
// validation tooling; the slice is a copy.
func (c *LRU) VictimOrder() []Key {
	out := make([]Key, 0, c.order.n)
	for e := c.order.root.next; e != &c.order.root; e = e.next {
		out = append(out, e.key)
	}
	return out
}
