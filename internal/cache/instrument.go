package cache

// Hooks observes cache events for instrumentation. Nil fields are
// skipped, so an all-nil Hooks is free. The hooks fire synchronously
// from the mutating goroutine; like the caches themselves they are not
// synchronized.
type Hooks struct {
	// Evicted fires after any operation that evicted entries, with the
	// number evicted by that operation.
	Evicted func(n int64)
	// Resident fires after any mutating operation with the cache's
	// current resident bytes.
	Resident func(bytes int64)
}

// instrumented decorates a Cache with Hooks by diffing the wrapped
// cache's Stats around each mutating call, so it works for every
// policy without touching their eviction paths.
type instrumented struct {
	Cache
	hooks Hooks
}

// Instrument wraps c so that h observes its evictions and resident
// bytes. Returns c unchanged when both hooks are nil.
func Instrument(c Cache, h Hooks) Cache {
	if h.Evicted == nil && h.Resident == nil {
		return c
	}
	return &instrumented{Cache: c, hooks: h}
}

func (c *instrumented) afterMutation(evictionsBefore int64) {
	if c.hooks.Evicted != nil {
		if n := c.Cache.Stats().Evictions - evictionsBefore; n > 0 {
			c.hooks.Evicted(n)
		}
	}
	if c.hooks.Resident != nil {
		c.hooks.Resident(c.Cache.Used())
	}
}

func (c *instrumented) Put(k Key, size int64) {
	before := c.Cache.Stats().Evictions
	c.Cache.Put(k, size)
	c.afterMutation(before)
}

func (c *instrumented) Remove(k Key) {
	before := c.Cache.Stats().Evictions
	c.Cache.Remove(k)
	c.afterMutation(before)
}

func (c *instrumented) Resize(capacity int64) {
	before := c.Cache.Stats().Evictions
	c.Cache.Resize(capacity)
	c.afterMutation(before)
}

func (c *instrumented) Clear() {
	c.Cache.Clear()
	if c.hooks.Resident != nil {
		c.hooks.Resident(c.Cache.Used())
	}
}
