package cache

import (
	"container/heap"

	"repro/internal/xrand"
)

// FIFO is a byte-capacity first-in-first-out cache: eviction order is
// insertion order and hits do not refresh position. Included as an
// ablation baseline against LRU.
type FIFO struct {
	capacity int64
	used     int64
	items    map[Key]*entry
	order    list
	free     freelist
	stats    Stats
}

var _ Cache = (*FIFO)(nil)

// NewFIFO returns a FIFO cache bounded to capacity bytes.
func NewFIFO(capacity int64) *FIFO {
	c := &FIFO{capacity: capacity, items: make(map[Key]*entry)}
	c.order.init()
	return c
}

// Get implements Cache. FIFO hits do not change eviction order.
func (c *FIFO) Get(k Key) bool {
	if _, ok := c.items[k]; ok {
		c.stats.Hits++
		return true
	}
	c.stats.Misses++
	return false
}

// Put implements Cache.
func (c *FIFO) Put(k Key, size int64) {
	validateSize(size)
	if e, ok := c.items[k]; ok {
		c.used += size - e.size
		e.size = size
		c.evictUntilFits()
		return
	}
	if size > c.capacity {
		c.stats.Rejections++
		return
	}
	e := c.free.get(k, size)
	c.items[k] = e
	c.order.pushBack(e)
	c.used += size
	c.stats.Insertions++
	c.evictUntilFits()
}

func (c *FIFO) evictUntilFits() {
	for c.used > c.capacity {
		victim := c.order.front()
		if victim == nil {
			return
		}
		c.order.remove(victim)
		delete(c.items, victim.key)
		c.used -= victim.size
		c.stats.Evictions++
		c.free.put(victim)
	}
}

// Contains implements Cache.
func (c *FIFO) Contains(k Key) bool { _, ok := c.items[k]; return ok }

// Remove implements Cache.
func (c *FIFO) Remove(k Key) {
	if e, ok := c.items[k]; ok {
		c.order.remove(e)
		delete(c.items, k)
		c.used -= e.size
		c.free.put(e)
	}
}

// Len implements Cache.
func (c *FIFO) Len() int { return len(c.items) }

// Used implements Cache.
func (c *FIFO) Used() int64 { return c.used }

// Capacity implements Cache.
func (c *FIFO) Capacity() int64 { return c.capacity }

// Resize implements Cache.
func (c *FIFO) Resize(capacity int64) {
	c.capacity = capacity
	c.evictUntilFits()
}

// Clear implements Cache.
func (c *FIFO) Clear() {
	c.items = make(map[Key]*entry)
	c.order.init()
	c.free = freelist{}
	c.used = 0
	c.stats = Stats{}
}

// Stats implements Cache.
func (c *FIFO) Stats() Stats { return c.stats }

// LFU is a byte-capacity least-frequently-used cache with LRU
// tie-breaking via an insertion counter. Included as an ablation baseline:
// LFU approximates the static optimum for IRM workloads and upper-bounds
// what any recency policy can achieve on a stationary Zipf stream.
type LFU struct {
	capacity int64
	used     int64
	items    map[Key]*lfuEntry
	pq       lfuHeap
	free     []*lfuEntry // recycled nodes, same rationale as freelist
	tick     int64
	stats    Stats
}

var _ Cache = (*LFU)(nil)

type lfuEntry struct {
	key   Key
	size  int64
	freq  int64
	tick  int64 // last-touch tick for tie-breaking
	index int   // heap index, -1 when removed
}

// NewLFU returns an LFU cache bounded to capacity bytes.
func NewLFU(capacity int64) *LFU {
	return &LFU{capacity: capacity, items: make(map[Key]*lfuEntry)}
}

// Get implements Cache.
func (c *LFU) Get(k Key) bool {
	if e, ok := c.items[k]; ok {
		e.freq++
		c.tick++
		e.tick = c.tick
		heap.Fix(&c.pq, e.index)
		c.stats.Hits++
		return true
	}
	c.stats.Misses++
	return false
}

// Put implements Cache.
func (c *LFU) Put(k Key, size int64) {
	validateSize(size)
	if e, ok := c.items[k]; ok {
		c.used += size - e.size
		e.size = size
		c.evictUntilFits()
		return
	}
	if size > c.capacity {
		c.stats.Rejections++
		return
	}
	c.tick++
	var e *lfuEntry
	if n := len(c.free); n > 0 {
		e = c.free[n-1]
		c.free = c.free[:n-1]
		*e = lfuEntry{key: k, size: size, freq: 1, tick: c.tick}
	} else {
		e = &lfuEntry{key: k, size: size, freq: 1, tick: c.tick}
	}
	c.items[k] = e
	heap.Push(&c.pq, e)
	c.used += size
	c.stats.Insertions++
	c.evictUntilFits()
}

func (c *LFU) evictUntilFits() {
	for c.used > c.capacity && c.pq.Len() > 0 {
		victim := heap.Pop(&c.pq).(*lfuEntry)
		delete(c.items, victim.key)
		c.used -= victim.size
		c.stats.Evictions++
		c.free = append(c.free, victim)
	}
}

// Contains implements Cache.
func (c *LFU) Contains(k Key) bool { _, ok := c.items[k]; return ok }

// Remove implements Cache.
func (c *LFU) Remove(k Key) {
	if e, ok := c.items[k]; ok {
		heap.Remove(&c.pq, e.index)
		delete(c.items, k)
		c.used -= e.size
		c.free = append(c.free, e)
	}
}

// Len implements Cache.
func (c *LFU) Len() int { return len(c.items) }

// Used implements Cache.
func (c *LFU) Used() int64 { return c.used }

// Capacity implements Cache.
func (c *LFU) Capacity() int64 { return c.capacity }

// Resize implements Cache.
func (c *LFU) Resize(capacity int64) {
	c.capacity = capacity
	c.evictUntilFits()
}

// Clear implements Cache.
func (c *LFU) Clear() {
	c.items = make(map[Key]*lfuEntry)
	c.pq = nil
	c.free = nil
	c.used = 0
	c.tick = 0
	c.stats = Stats{}
}

// Stats implements Cache.
func (c *LFU) Stats() Stats { return c.stats }

type lfuHeap []*lfuEntry

func (h lfuHeap) Len() int { return len(h) }
func (h lfuHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].tick < h[j].tick
}
func (h lfuHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *lfuHeap) Push(x interface{}) {
	e := x.(*lfuEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *lfuHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	e.index = -1
	*h = old[:n-1]
	return e
}

// DelayedLRU is the delayed-LRU policy of Karlsson & Mahalingam [15]
// (cited in §2.2 and §6 of the paper): an object is admitted to the LRU
// cache only on its Delay-th request, which filters one-hit wonders.
// Request counts for uncached objects live in a bounded ghost table that
// itself evicts in LRU order.
type DelayedLRU struct {
	lru    *LRU
	delay  int
	ghosts map[Key]int
	order  []Key // FIFO approximation of ghost recency
	limit  int
	stats  Stats
}

var _ Cache = (*DelayedLRU)(nil)

// NewDelayedLRU returns a delayed-LRU cache bounded to capacity bytes that
// admits an object on its delay-th consecutive miss. delay <= 1 behaves
// exactly like plain LRU.
func NewDelayedLRU(capacity int64, delay int) *DelayedLRU {
	if delay < 1 {
		delay = 1
	}
	return &DelayedLRU{
		lru:    NewLRU(capacity),
		delay:  delay,
		ghosts: make(map[Key]int),
		limit:  4096,
	}
}

// Get implements Cache.
func (c *DelayedLRU) Get(k Key) bool {
	if c.lru.Get(k) {
		c.stats.Hits++
		return true
	}
	c.stats.Misses++
	return false
}

// Put implements Cache. Admission is deferred until the object has been
// offered delay times.
func (c *DelayedLRU) Put(k Key, size int64) {
	validateSize(size)
	if c.lru.Contains(k) {
		c.lru.Put(k, size)
		return
	}
	n := c.ghosts[k] + 1
	if n < c.delay {
		c.ghosts[k] = n
		if n == 1 {
			c.order = append(c.order, k)
			c.trimGhosts()
		}
		c.stats.Rejections++
		return
	}
	delete(c.ghosts, k)
	c.lru.Put(k, size)
	c.stats.Insertions++
}

func (c *DelayedLRU) trimGhosts() {
	for len(c.ghosts) > c.limit && len(c.order) > 0 {
		victim := c.order[0]
		c.order = c.order[1:]
		delete(c.ghosts, victim)
	}
}

// Contains implements Cache.
func (c *DelayedLRU) Contains(k Key) bool { return c.lru.Contains(k) }

// Remove implements Cache.
func (c *DelayedLRU) Remove(k Key) { c.lru.Remove(k) }

// Len implements Cache.
func (c *DelayedLRU) Len() int { return c.lru.Len() }

// Used implements Cache.
func (c *DelayedLRU) Used() int64 { return c.lru.Used() }

// Capacity implements Cache.
func (c *DelayedLRU) Capacity() int64 { return c.lru.Capacity() }

// Resize implements Cache.
func (c *DelayedLRU) Resize(capacity int64) { c.lru.Resize(capacity) }

// Clear implements Cache.
func (c *DelayedLRU) Clear() {
	c.lru.Clear()
	c.ghosts = make(map[Key]int)
	c.order = nil
	c.stats = Stats{}
}

// Stats implements Cache. Eviction counts come from the inner LRU.
func (c *DelayedLRU) Stats() Stats {
	s := c.stats
	s.Evictions = c.lru.Stats().Evictions
	return s
}

// Random is a byte-capacity random-replacement cache: eviction picks a
// uniformly random resident object. Under the independent reference
// model its hit ratio matches FIFO's (Gelenbe 1973), which is what the
// analytical RANDOM/FIFO model in internal/lrumodel predicts; this
// variant grounds that claim in simulation. Victim selection draws from
// a deterministic xrand stream, so runs are reproducible for a fixed
// seed.
type Random struct {
	capacity int64
	used     int64
	index    map[Key]int // key -> position in entries
	entries  []randEntry
	rng      *xrand.Source
	stats    Stats
}

type randEntry struct {
	key  Key
	size int64
}

var _ Cache = (*Random)(nil)

// NewRandom returns a random-replacement cache bounded to capacity
// bytes, drawing victims from a stream seeded with seed.
func NewRandom(capacity int64, seed uint64) *Random {
	return &Random{
		capacity: capacity,
		index:    make(map[Key]int),
		rng:      xrand.New(seed),
	}
}

// Get implements Cache. Hits do not change replacement state.
func (c *Random) Get(k Key) bool {
	if _, ok := c.index[k]; ok {
		c.stats.Hits++
		return true
	}
	c.stats.Misses++
	return false
}

// Put implements Cache.
func (c *Random) Put(k Key, size int64) {
	validateSize(size)
	if i, ok := c.index[k]; ok {
		c.used += size - c.entries[i].size
		c.entries[i].size = size
		c.evictUntilFits()
		return
	}
	if size > c.capacity {
		c.stats.Rejections++
		return
	}
	c.index[k] = len(c.entries)
	c.entries = append(c.entries, randEntry{key: k, size: size})
	c.used += size
	c.stats.Insertions++
	c.evictUntilFits()
}

func (c *Random) evictUntilFits() {
	for c.used > c.capacity && len(c.entries) > 0 {
		c.removeAt(c.rng.Intn(len(c.entries)))
		c.stats.Evictions++
	}
}

// removeAt swap-removes entry i, keeping the index map consistent.
func (c *Random) removeAt(i int) {
	e := c.entries[i]
	last := len(c.entries) - 1
	c.entries[i] = c.entries[last]
	c.index[c.entries[i].key] = i
	c.entries = c.entries[:last]
	delete(c.index, e.key)
	c.used -= e.size
}

// Contains implements Cache.
func (c *Random) Contains(k Key) bool { _, ok := c.index[k]; return ok }

// Remove implements Cache.
func (c *Random) Remove(k Key) {
	if i, ok := c.index[k]; ok {
		c.removeAt(i)
	}
}

// Len implements Cache.
func (c *Random) Len() int { return len(c.entries) }

// Used implements Cache.
func (c *Random) Used() int64 { return c.used }

// Capacity implements Cache.
func (c *Random) Capacity() int64 { return c.capacity }

// Resize implements Cache.
func (c *Random) Resize(capacity int64) {
	c.capacity = capacity
	c.evictUntilFits()
}

// Clear implements Cache. The victim stream is not reset, so a cleared
// cache continues its deterministic sequence.
func (c *Random) Clear() {
	c.index = make(map[Key]int)
	c.entries = nil
	c.used = 0
	c.stats = Stats{}
}

// Stats implements Cache.
func (c *Random) Stats() Stats { return c.stats }

// Policy names a cache replacement policy for configuration surfaces.
type Policy string

// Supported replacement policies.
const (
	PolicyLRU        Policy = "lru"
	PolicyFIFO       Policy = "fifo"
	PolicyLFU        Policy = "lfu"
	PolicyDelayedLRU Policy = "delayed-lru"
	PolicyRandom     Policy = "random"
)

// New constructs a cache of the given policy and byte capacity. The
// delayed-LRU admission threshold is fixed at 2, the value [15] reports
// as near-optimal; the random policy's victim stream is seeded with the
// policy name so repeated runs are identical.
func New(p Policy, capacity int64) Cache {
	switch p {
	case PolicyFIFO:
		return NewFIFO(capacity)
	case PolicyLFU:
		return NewLFU(capacity)
	case PolicyDelayedLRU:
		return NewDelayedLRU(capacity, 2)
	case PolicyRandom:
		return NewRandom(capacity, xrand.Mix(0, string(PolicyRandom)))
	default:
		return NewLRU(capacity)
	}
}
