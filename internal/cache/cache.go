// Package cache implements the per-server web caches of the CDN model.
//
// The paper's hybrid scheme runs "a simple LRU caching scheme" (§1, §3.2)
// in the storage space each CDN server does not spend on replicas. Objects
// have heterogeneous byte sizes, so the caches here are byte-capacity
// bounded, not entry-count bounded: an insertion evicts from the
// replacement end until the new object fits.
//
// Besides LRU the package provides FIFO, LFU and delayed-LRU (the variant
// of Karlsson & Mahalingam [15] that only admits an object after it has
// been seen d times) for the ablation experiments that go beyond the
// paper.
package cache

import "fmt"

// Key identifies a web object: object Index within site Site. Sites and
// objects are dense integer ids assigned by the workload generator.
type Key struct {
	Site   int
	Object int
}

// Stats counts cache events since construction or the last Clear.
type Stats struct {
	Hits       int64
	Misses     int64
	Insertions int64
	Evictions  int64
	Rejections int64 // Put calls dropped (object larger than capacity, or admission refused)
}

// HitRatio returns Hits / (Hits + Misses), or 0 before any lookups.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a byte-capacity bounded object cache. Implementations are not
// safe for concurrent use; the simulator shards caches per server.
type Cache interface {
	// Get looks up k, updating replacement state, and reports a hit.
	Get(k Key) bool
	// Put inserts k with the given size after a miss, evicting as
	// needed. Inserting an existing key refreshes its replacement
	// state and updates its size.
	Put(k Key, size int64)
	// Contains reports whether k is cached without touching
	// replacement state.
	Contains(k Key) bool
	// Remove drops k if present (used for invalidation experiments).
	Remove(k Key)
	// Len returns the number of cached objects.
	Len() int
	// Used returns the cached bytes.
	Used() int64
	// Capacity returns the byte capacity.
	Capacity() int64
	// Resize changes the capacity, evicting if it shrinks below Used.
	Resize(capacity int64)
	// Clear drops all entries and resets statistics.
	Clear()
	// Stats returns the event counters.
	Stats() Stats
}

// entry is a node of the intrusive doubly-linked list shared by the
// recency/insertion-ordered policies.
type entry struct {
	key        Key
	size       int64
	prev, next *entry
	freq       int64 // used by LFU only
}

// list is an intrusive doubly-linked list with sentinel; front = next
// eviction victim, back = most recently touched/inserted.
type list struct {
	root entry
	n    int
}

func (l *list) init() {
	l.root.prev = &l.root
	l.root.next = &l.root
	l.n = 0
}

func (l *list) pushBack(e *entry) {
	at := l.root.prev
	e.prev = at
	e.next = &l.root
	at.next = e
	l.root.prev = e
	l.n++
}

func (l *list) remove(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
	l.n--
}

func (l *list) moveToBack(e *entry) {
	l.remove(e)
	l.pushBack(e)
}

func (l *list) front() *entry {
	if l.n == 0 {
		return nil
	}
	return l.root.next
}

// freelist recycles evicted entry nodes. Caches are single-goroutine by
// contract (see Cache), so a plain intrusive stack chained through next
// suffices; it removes the steady-state allocation per cache miss once
// the cache has cycled through its capacity.
type freelist struct {
	head *entry
}

func (f *freelist) get(k Key, size int64) *entry {
	e := f.head
	if e == nil {
		return &entry{key: k, size: size}
	}
	f.head = e.next
	*e = entry{key: k, size: size}
	return e
}

func (f *freelist) put(e *entry) {
	*e = entry{next: f.head}
	f.head = e
}

func validateSize(size int64) {
	if size <= 0 {
		panic(fmt.Sprintf("cache: Put with non-positive size %d", size))
	}
}
