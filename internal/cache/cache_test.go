package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func k(site, obj int) Key { return Key{Site: site, Object: obj} }

func TestLRUBasicHitMiss(t *testing.T) {
	c := NewLRU(100)
	if c.Get(k(0, 1)) {
		t.Fatal("hit on empty cache")
	}
	c.Put(k(0, 1), 10)
	if !c.Get(k(0, 1)) {
		t.Fatal("miss after Put")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Insertions != 1 {
		t.Fatalf("stats %+v", s)
	}
	if got := s.HitRatio(); got != 0.5 {
		t.Fatalf("hit ratio %v, want 0.5", got)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := NewLRU(30)
	c.Put(k(0, 1), 10)
	c.Put(k(0, 2), 10)
	c.Put(k(0, 3), 10)
	// Touch 1 so 2 becomes the LRU victim.
	if !c.Get(k(0, 1)) {
		t.Fatal("expected hit")
	}
	c.Put(k(0, 4), 10) // evicts 2
	if c.Contains(k(0, 2)) {
		t.Fatal("object 2 should have been evicted")
	}
	for _, key := range []Key{k(0, 1), k(0, 3), k(0, 4)} {
		if !c.Contains(key) {
			t.Fatalf("object %v missing", key)
		}
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions %d, want 1", ev)
	}
}

func TestLRUVictimOrder(t *testing.T) {
	c := NewLRU(100)
	c.Put(k(0, 1), 10)
	c.Put(k(0, 2), 10)
	c.Put(k(0, 3), 10)
	c.Get(k(0, 1))
	got := c.VictimOrder()
	want := []Key{k(0, 2), k(0, 3), k(0, 1)}
	if len(got) != len(want) {
		t.Fatalf("order %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestLRUByteCapacityMultiEviction(t *testing.T) {
	c := NewLRU(100)
	for i := 0; i < 10; i++ {
		c.Put(k(0, i), 10)
	}
	c.Put(k(1, 0), 55) // must evict 6 objects of size 10
	if c.Used() > c.Capacity() {
		t.Fatalf("used %d exceeds capacity", c.Used())
	}
	if c.Len() != 5 {
		t.Fatalf("len %d, want 5 (4 old + 1 new)", c.Len())
	}
	if !c.Contains(k(1, 0)) {
		t.Fatal("new large object missing")
	}
}

func TestLRUOversizedRejected(t *testing.T) {
	c := NewLRU(50)
	c.Put(k(0, 1), 60)
	if c.Len() != 0 || c.Used() != 0 {
		t.Fatal("oversized object was admitted")
	}
	if c.Stats().Rejections != 1 {
		t.Fatalf("rejections %d, want 1", c.Stats().Rejections)
	}
}

func TestLRUZeroCapacity(t *testing.T) {
	c := NewLRU(0)
	c.Put(k(0, 1), 1)
	if c.Get(k(0, 1)) {
		t.Fatal("zero-capacity cache produced a hit")
	}
	if c.Len() != 0 {
		t.Fatal("zero-capacity cache stored an object")
	}
}

func TestLRUPutUpdatesSize(t *testing.T) {
	c := NewLRU(100)
	c.Put(k(0, 1), 10)
	c.Put(k(0, 1), 30)
	if c.Used() != 30 || c.Len() != 1 {
		t.Fatalf("used=%d len=%d after size update", c.Used(), c.Len())
	}
	// Growing an existing entry beyond capacity evicts others first.
	c.Put(k(0, 2), 10)
	c.Put(k(0, 1), 95)
	if c.Used() > 100 {
		t.Fatalf("used %d exceeds capacity after in-place growth", c.Used())
	}
	if c.Contains(k(0, 2)) {
		t.Fatal("older entry survived in-place growth that required eviction")
	}
}

func TestLRURemove(t *testing.T) {
	c := NewLRU(100)
	c.Put(k(0, 1), 10)
	c.Remove(k(0, 1))
	if c.Contains(k(0, 1)) || c.Used() != 0 || c.Len() != 0 {
		t.Fatal("Remove did not remove")
	}
	c.Remove(k(9, 9)) // no-op must not panic
}

func TestLRUResize(t *testing.T) {
	c := NewLRU(100)
	for i := 0; i < 10; i++ {
		c.Put(k(0, i), 10)
	}
	c.Resize(35)
	if c.Used() > 35 {
		t.Fatalf("used %d after shrink to 35", c.Used())
	}
	if c.Len() != 3 {
		t.Fatalf("len %d, want 3", c.Len())
	}
	// The survivors must be the most recently inserted ones.
	for i := 7; i < 10; i++ {
		if !c.Contains(k(0, i)) {
			t.Fatalf("object %d should have survived shrink", i)
		}
	}
}

func TestLRUClear(t *testing.T) {
	c := NewLRU(100)
	c.Put(k(0, 1), 10)
	c.Get(k(0, 1))
	c.Clear()
	if c.Len() != 0 || c.Used() != 0 {
		t.Fatal("Clear left data")
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("Clear left stats %+v", s)
	}
}

func TestPutPanicsOnBadSize(t *testing.T) {
	for _, size := range []int64{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("size %d did not panic", size)
				}
			}()
			NewLRU(10).Put(k(0, 0), size)
		}()
	}
}

func TestFIFOIgnoresRecency(t *testing.T) {
	c := NewFIFO(30)
	c.Put(k(0, 1), 10)
	c.Put(k(0, 2), 10)
	c.Put(k(0, 3), 10)
	c.Get(k(0, 1)) // FIFO: does not protect object 1
	c.Put(k(0, 4), 10)
	if c.Contains(k(0, 1)) {
		t.Fatal("FIFO kept the oldest object after a hit")
	}
	if !c.Contains(k(0, 2)) {
		t.Fatal("FIFO evicted the wrong object")
	}
}

func TestLFUKeepsHotObjects(t *testing.T) {
	c := NewLFU(30)
	c.Put(k(0, 1), 10)
	c.Put(k(0, 2), 10)
	c.Put(k(0, 3), 10)
	for i := 0; i < 5; i++ {
		c.Get(k(0, 1))
		c.Get(k(0, 2))
	}
	c.Put(k(0, 4), 10) // must evict 3: frequency 1, lowest
	if c.Contains(k(0, 3)) {
		t.Fatal("LFU evicted a hot object instead of the cold one")
	}
	if !c.Contains(k(0, 1)) || !c.Contains(k(0, 2)) {
		t.Fatal("LFU lost hot objects")
	}
}

func TestLFURemoveAndResize(t *testing.T) {
	c := NewLFU(100)
	for i := 0; i < 10; i++ {
		c.Put(k(0, i), 10)
	}
	c.Remove(k(0, 5))
	if c.Contains(k(0, 5)) || c.Used() != 90 {
		t.Fatal("LFU Remove failed")
	}
	c.Resize(20)
	if c.Used() > 20 {
		t.Fatalf("LFU used %d after shrink", c.Used())
	}
}

func TestDelayedLRUAdmitsOnSecondOffer(t *testing.T) {
	c := NewDelayedLRU(100, 2)
	c.Put(k(0, 1), 10)
	if c.Contains(k(0, 1)) {
		t.Fatal("delayed-LRU admitted on first offer")
	}
	c.Put(k(0, 1), 10)
	if !c.Contains(k(0, 1)) {
		t.Fatal("delayed-LRU did not admit on second offer")
	}
}

func TestDelayedLRUDelayOneIsLRU(t *testing.T) {
	c := NewDelayedLRU(100, 1)
	c.Put(k(0, 1), 10)
	if !c.Contains(k(0, 1)) {
		t.Fatal("delay=1 should admit immediately")
	}
	// delay < 1 clamps to 1
	c2 := NewDelayedLRU(100, 0)
	c2.Put(k(0, 2), 10)
	if !c2.Contains(k(0, 2)) {
		t.Fatal("delay=0 should clamp to immediate admission")
	}
}

func TestDelayedLRUFiltersOneHitWonders(t *testing.T) {
	// Stream: hot object requested often, cold objects once each. The
	// delayed cache must end up holding the hot object and none of the
	// cold ones.
	c := NewDelayedLRU(20, 2)
	hot := k(0, 0)
	for i := 1; i <= 50; i++ {
		if !c.Get(hot) {
			c.Put(hot, 10)
		}
		cold := k(1, i)
		if !c.Get(cold) {
			c.Put(cold, 10)
		}
	}
	if !c.Contains(hot) {
		t.Fatal("hot object missing from delayed-LRU")
	}
	for i := 1; i <= 50; i++ {
		if c.Contains(k(1, i)) {
			t.Fatalf("one-hit wonder %d was admitted", i)
		}
	}
}

func TestNewFactory(t *testing.T) {
	for _, tc := range []struct {
		p    Policy
		want string
	}{
		{PolicyLRU, "*cache.LRU"},
		{PolicyFIFO, "*cache.FIFO"},
		{PolicyLFU, "*cache.LFU"},
		{PolicyDelayedLRU, "*cache.DelayedLRU"},
		{Policy("unknown"), "*cache.LRU"},
	} {
		c := New(tc.p, 10)
		if got := typeName(c); got != tc.want {
			t.Errorf("New(%q) = %s, want %s", tc.p, got, tc.want)
		}
	}
}

func typeName(c Cache) string {
	switch c.(type) {
	case *LRU:
		return "*cache.LRU"
	case *FIFO:
		return "*cache.FIFO"
	case *LFU:
		return "*cache.LFU"
	case *DelayedLRU:
		return "*cache.DelayedLRU"
	}
	return "?"
}

// TestInvariantsUnderRandomWorkload drives every policy with a random
// Get/Put/Remove/Resize stream and checks the capacity and accounting
// invariants that must hold for any correct cache.
func TestInvariantsUnderRandomWorkload(t *testing.T) {
	policies := map[string]func() Cache{
		"lru":         func() Cache { return NewLRU(500) },
		"fifo":        func() Cache { return NewFIFO(500) },
		"lfu":         func() Cache { return NewLFU(500) },
		"delayed-lru": func() Cache { return NewDelayedLRU(500, 2) },
	}
	for name, mk := range policies {
		t.Run(name, func(t *testing.T) {
			c := mk()
			r := xrand.New(77)
			for step := 0; step < 20000; step++ {
				key := k(r.Intn(3), r.Intn(60))
				switch r.Intn(10) {
				case 0:
					c.Remove(key)
				case 1:
					c.Resize(int64(100 + r.Intn(900)))
				default:
					if !c.Get(key) {
						c.Put(key, int64(1+r.Intn(50)))
					}
				}
				if c.Used() > c.Capacity() {
					t.Fatalf("step %d: used %d > capacity %d", step, c.Used(), c.Capacity())
				}
				if c.Used() < 0 {
					t.Fatalf("step %d: negative used %d", step, c.Used())
				}
				if c.Len() < 0 {
					t.Fatalf("step %d: negative len", step)
				}
			}
		})
	}
}

// TestLRUMatchesReferenceModel checks the linked-list LRU against a naive
// slice-based reference implementation on random streams.
func TestLRUMatchesReferenceModel(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		capacity := int64(50 + r.Intn(200))
		c := NewLRU(capacity)
		ref := newRefLRU(capacity)
		for step := 0; step < 2000; step++ {
			key := k(0, r.Intn(40))
			size := int64(1 + r.Intn(30))
			gotHit := c.Get(key)
			wantHit := ref.get(key)
			if gotHit != wantHit {
				return false
			}
			if !gotHit {
				c.Put(key, size)
				ref.put(key, size)
			}
			if c.Used() != ref.used() || c.Len() != ref.len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// refLRU is an intentionally simple O(n) reference: slice ordered from LRU
// to MRU.
type refLRU struct {
	capacity int64
	keys     []Key
	sizes    map[Key]int64
}

func newRefLRU(capacity int64) *refLRU {
	return &refLRU{capacity: capacity, sizes: make(map[Key]int64)}
}

func (r *refLRU) get(key Key) bool {
	for i, kk := range r.keys {
		if kk == key {
			r.keys = append(append(r.keys[:i:i], r.keys[i+1:]...), key)
			return true
		}
	}
	return false
}

func (r *refLRU) put(key Key, size int64) {
	if _, ok := r.sizes[key]; ok {
		r.get(key)
		r.sizes[key] = size
	} else {
		if size > r.capacity {
			return
		}
		r.keys = append(r.keys, key)
		r.sizes[key] = size
	}
	for r.used() > r.capacity {
		victim := r.keys[0]
		r.keys = r.keys[1:]
		delete(r.sizes, victim)
	}
}

func (r *refLRU) used() int64 {
	var total int64
	for _, s := range r.sizes {
		total += s
	}
	return total
}

func (r *refLRU) len() int { return len(r.keys) }

func BenchmarkLRUGetPut(b *testing.B) {
	c := NewLRU(1 << 20)
	r := xrand.New(1)
	keys := make([]Key, 4096)
	for i := range keys {
		keys[i] = k(i%16, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := keys[r.Intn(len(keys))]
		if !c.Get(key) {
			c.Put(key, 512)
		}
	}
}
