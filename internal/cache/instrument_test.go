package cache

import "testing"

func TestInstrumentNoHooksReturnsOriginal(t *testing.T) {
	lru := NewLRU(100)
	if c := Instrument(lru, Hooks{}); c != Cache(lru) {
		t.Fatal("all-nil hooks should return the wrapped cache unchanged")
	}
}

func TestInstrumentHooks(t *testing.T) {
	var evicted, residentCalls int64
	var resident int64
	c := Instrument(NewLRU(100), Hooks{
		Evicted:  func(n int64) { evicted += n },
		Resident: func(b int64) { resident = b; residentCalls++ },
	})

	c.Put(Key{Site: 0, Object: 1}, 60)
	if resident != 60 {
		t.Fatalf("resident = %d after first Put, want 60", resident)
	}
	c.Put(Key{Site: 0, Object: 2}, 60) // evicts object 1
	if evicted != 1 {
		t.Fatalf("evicted = %d, want 1", evicted)
	}
	if resident != 60 {
		t.Fatalf("resident = %d after eviction, want 60", resident)
	}

	c.Resize(30) // evicts object 2
	if evicted != 2 {
		t.Fatalf("evicted = %d after Resize, want 2", evicted)
	}
	if resident != 0 {
		t.Fatalf("resident = %d after Resize, want 0", resident)
	}

	c.Put(Key{Site: 0, Object: 3}, 20)
	c.Remove(Key{Site: 0, Object: 3})
	if resident != 0 {
		t.Fatalf("resident = %d after Remove, want 0", resident)
	}

	c.Put(Key{Site: 0, Object: 4}, 20)
	c.Clear()
	if resident != 0 {
		t.Fatalf("resident = %d after Clear, want 0", resident)
	}
	if residentCalls == 0 {
		t.Fatal("Resident hook never fired")
	}

	// Reads must not fire mutation hooks.
	before := residentCalls
	c.Get(Key{Site: 0, Object: 4})
	c.Contains(Key{Site: 0, Object: 4})
	if residentCalls != before {
		t.Fatal("read path fired the Resident hook")
	}
}

// TestInstrumentAcrossPolicies checks the Stats-diff approach works for
// every replacement policy, not just LRU.
func TestInstrumentAcrossPolicies(t *testing.T) {
	for _, policy := range []Policy{PolicyLRU, PolicyFIFO, PolicyLFU} {
		var evicted int64
		c := Instrument(New(policy, 100), Hooks{Evicted: func(n int64) { evicted += n }})
		c.Put(Key{Site: 0, Object: 1}, 80)
		c.Get(Key{Site: 0, Object: 1})
		c.Put(Key{Site: 0, Object: 2}, 80) // must evict object 1
		if evicted == 0 {
			t.Errorf("%v: eviction hook never fired", policy)
		}
	}
}

// The instrumented wrapper must not make the simulator hot path
// measurably slower; compare these two with
// `go test -bench=Instrument ./internal/cache`.
func benchCache(b *testing.B, c Cache) {
	b.Helper()
	keys := make([]Key, 256)
	for i := range keys {
		keys[i] = Key{Site: i % 8, Object: i}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		if !c.Get(k) {
			c.Put(k, 64)
		}
	}
}

func BenchmarkLRUUninstrumented(b *testing.B) {
	benchCache(b, NewLRU(8192))
}

func BenchmarkLRUInstrumented(b *testing.B) {
	var evicted, resident int64
	benchCache(b, Instrument(NewLRU(8192), Hooks{
		Evicted:  func(n int64) { evicted += n },
		Resident: func(bytes int64) { resident = bytes },
	}))
	_ = evicted
	_ = resident
}
