// Package workload synthesizes the CDN request workload of §5.1.
//
// The authors note that no public CDN traces exist and therefore generate
// a separate SURGE-model [3] synthetic workload per hosted web site. This
// package reproduces the parts of SURGE the evaluation depends on:
//
//   - each of the M sites has L objects whose popularity follows a
//     Zipf-like distribution with parameter θ (§3, [22]);
//   - object sizes are heavy-tailed: a lognormal body with a
//     bounded-Pareto tail, SURGE's hybrid size model;
//   - sites fall into popularity classes — the paper uses 5 low, 10
//     medium and 5 high-popularity sites — that scale their total request
//     volume;
//   - the fraction of each site's requests issued by server S(i) follows
//     a normal distribution with µ = 1/N and σ = 1/4N, truncated to
//     µ ± 3σ.
//
// SURGE's user-equivalent ON/OFF timing machinery is deliberately
// omitted: the simulator is trace-driven and response time is a pure
// function of hop distance, so inter-arrival times never enter the
// measured quantities (see DESIGN.md).
package workload

import (
	"fmt"
	"sort"

	"repro/internal/lrumodel"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Class labels a site's popularity tier.
type Class int

// Site popularity classes (§5.1: "5 sites of low popularity, 10 sites of
// medium popularity and 5 sites of high popularity").
const (
	ClassLow Class = iota
	ClassMedium
	ClassHigh
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassLow:
		return "low"
	case ClassMedium:
		return "medium"
	case ClassHigh:
		return "high"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Config parameterizes workload synthesis. The zero value is unusable;
// start from DefaultConfig.
type Config struct {
	// Servers is N, the number of CDN servers issuing requests.
	Servers int
	// LowSites, MediumSites, HighSites partition the M sites into
	// popularity classes.
	LowSites, MediumSites, HighSites int
	// LowWeight, MediumWeight, HighWeight are the relative total
	// request volumes of the classes.
	LowWeight, MediumWeight, HighWeight float64
	// ObjectsPerSite is L, the catalog size of every site.
	ObjectsPerSite int
	// Theta is the Zipf-like parameter of intra-site object popularity.
	Theta float64
	// Lambda is the fraction of requests returning uncacheable or
	// stale documents (§3.3 / §5.2 second experiment).
	Lambda float64
	// Size model: lognormal body (SURGE defaults µ=9.357, σ=1.318)
	// with a bounded-Pareto tail (k=133 kB, α=1.1) used for TailProb
	// of the objects.
	BodyMu, BodySigma       float64
	TailK, TailH, TailAlpha float64
	TailProb                float64
	// SpreadSigmaFactor scales the per-server popularity spread:
	// σ = SpreadSigmaFactor/N. The paper uses 1/4 (σ = 1/4N).
	SpreadSigmaFactor float64
	// LocalityProb adds SURGE-style temporal locality beyond the
	// independent reference model: with this probability a request
	// repeats an object recently requested at the same server instead
	// of drawing fresh. 0 (the paper's implicit IRM assumption)
	// disables it.
	LocalityProb float64
	// LocalityDepth is the per-server recency buffer size the repeats
	// draw from (default 256 when LocalityProb > 0).
	LocalityDepth int
}

// DefaultConfig returns the paper's §5.1 parameters.
func DefaultConfig() Config {
	return Config{
		Servers:           50,
		LowSites:          5,
		MediumSites:       10,
		HighSites:         5,
		LowWeight:         1,
		MediumWeight:      4,
		HighWeight:        16,
		ObjectsPerSite:    2000,
		Theta:             1.0,
		Lambda:            0,
		BodyMu:            9.357,
		BodySigma:         1.318,
		TailK:             133000,
		TailH:             50e6,
		TailAlpha:         1.1,
		TailProb:          0.07,
		SpreadSigmaFactor: 0.25,
	}
}

// Sites returns M.
func (c Config) Sites() int { return c.LowSites + c.MediumSites + c.HighSites }

// Validate reports a configuration error, or nil.
func (c Config) Validate() error {
	switch {
	case c.Servers < 1:
		return fmt.Errorf("workload: Servers = %d", c.Servers)
	case c.Sites() < 1:
		return fmt.Errorf("workload: no sites configured")
	case c.LowSites < 0 || c.MediumSites < 0 || c.HighSites < 0:
		return fmt.Errorf("workload: negative site class count")
	case c.LowWeight < 0 || c.MediumWeight < 0 || c.HighWeight < 0:
		return fmt.Errorf("workload: negative class weight")
	case c.ObjectsPerSite < 1:
		return fmt.Errorf("workload: ObjectsPerSite = %d", c.ObjectsPerSite)
	case c.Theta < 0:
		return fmt.Errorf("workload: Theta = %v", c.Theta)
	case c.Lambda < 0 || c.Lambda > 1:
		return fmt.Errorf("workload: Lambda = %v", c.Lambda)
	case c.TailProb < 0 || c.TailProb > 1:
		return fmt.Errorf("workload: TailProb = %v", c.TailProb)
	case c.TailProb > 0 && (c.TailK <= 0 || c.TailH <= c.TailK || c.TailAlpha <= 0):
		return fmt.Errorf("workload: invalid Pareto tail (k=%v h=%v alpha=%v)", c.TailK, c.TailH, c.TailAlpha)
	case c.TailProb < 1 && c.BodySigma < 0:
		return fmt.Errorf("workload: BodySigma = %v", c.BodySigma)
	case c.SpreadSigmaFactor < 0:
		return fmt.Errorf("workload: SpreadSigmaFactor = %v", c.SpreadSigmaFactor)
	case c.LocalityProb < 0 || c.LocalityProb > 1:
		return fmt.Errorf("workload: LocalityProb = %v", c.LocalityProb)
	case c.LocalityDepth < 0:
		return fmt.Errorf("workload: LocalityDepth = %v", c.LocalityDepth)
	}
	return nil
}

// Site is one hosted web site's synthetic catalog.
type Site struct {
	ID      int
	Class   Class
	Weight  float64 // share of total request volume across all servers
	Zipf    *stats.Zipf
	Objects []int64 // byte size by popularity rank; Objects[k-1] = size of rank k
	Bytes   int64   // Σ Objects
}

// Spec converts the site to the analytical model's terms.
func (s *Site) Spec(lambda float64) lrumodel.SiteSpec {
	return lrumodel.SiteSpec{Objects: len(s.Objects), Theta: s.Zipf.Theta, Lambda: lambda}
}

// Workload is the fully synthesized input of one experiment run.
type Workload struct {
	Cfg   Config
	Sites []*Site
	// Demand[i][j] is r_j^(i): the request rate of server i for site
	// j, normalized so that ΣΣ Demand = 1.
	Demand [][]float64
	// TotalBytes is Σ_j o_j, the cumulative size of all sites; server
	// capacity is specified as a percentage of this (§5.1).
	TotalBytes int64
	// AvgObjectBytes is ō, the average object size over all sites.
	AvgObjectBytes float64
}

// Generate synthesizes a workload from cfg using stream r. The same
// (cfg, seed) pair always yields the identical workload.
func Generate(cfg Config, r *xrand.Source) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := &Workload{Cfg: cfg}
	sizeRand := r.Split("sizes")
	demandRand := r.Split("demand")

	// Class weights normalized over sites.
	classOf := make([]Class, 0, cfg.Sites())
	for i := 0; i < cfg.LowSites; i++ {
		classOf = append(classOf, ClassLow)
	}
	for i := 0; i < cfg.MediumSites; i++ {
		classOf = append(classOf, ClassMedium)
	}
	for i := 0; i < cfg.HighSites; i++ {
		classOf = append(classOf, ClassHigh)
	}
	// Shuffle class assignment so site id does not encode class.
	r.Split("classes").Shuffle(len(classOf), func(i, j int) {
		classOf[i], classOf[j] = classOf[j], classOf[i]
	})

	body := stats.Lognormal{Mu: cfg.BodyMu, Sigma: cfg.BodySigma}
	tail := stats.BoundedPareto{K: cfg.TailK, H: cfg.TailH, Alpha: cfg.TailAlpha}
	zipf := stats.NewZipf(cfg.ObjectsPerSite, cfg.Theta)

	totalWeight := 0.0
	var totalBytes int64
	totalObjects := 0
	for id := 0; id < cfg.Sites(); id++ {
		s := &Site{ID: id, Class: classOf[id], Zipf: zipf}
		switch s.Class {
		case ClassLow:
			s.Weight = cfg.LowWeight
		case ClassMedium:
			s.Weight = cfg.MediumWeight
		case ClassHigh:
			s.Weight = cfg.HighWeight
		}
		s.Objects = make([]int64, cfg.ObjectsPerSite)
		for k := range s.Objects {
			var sz float64
			if sizeRand.Float64() < cfg.TailProb {
				sz = tail.Sample(sizeRand)
			} else {
				sz = body.Sample(sizeRand)
			}
			if sz < 1 {
				sz = 1
			}
			s.Objects[k] = int64(sz)
			s.Bytes += s.Objects[k]
		}
		totalWeight += s.Weight
		totalBytes += s.Bytes
		totalObjects += len(s.Objects)
		w.Sites = append(w.Sites, s)
	}
	for _, s := range w.Sites {
		s.Weight /= totalWeight
	}
	w.TotalBytes = totalBytes
	w.AvgObjectBytes = float64(totalBytes) / float64(totalObjects)

	// Per-server spread: the fraction of site j's requests issued by
	// server i is truncated-normal(1/N, σ) and renormalized to sum 1.
	tn := stats.TruncNormal{
		Mean:  1 / float64(cfg.Servers),
		Sigma: cfg.SpreadSigmaFactor / float64(cfg.Servers),
	}
	w.Demand = make([][]float64, cfg.Servers)
	for i := range w.Demand {
		w.Demand[i] = make([]float64, cfg.Sites())
	}
	for j := range w.Sites {
		col := make([]float64, cfg.Servers)
		sum := 0.0
		for i := range col {
			v := tn.Sample(demandRand)
			if v < 0 {
				v = 0
			}
			col[i] = v
			sum += v
		}
		for i := range col {
			w.Demand[i][j] = w.Sites[j].Weight * col[i] / sum
		}
	}
	return w, nil
}

// MustGenerate is Generate that panics on configuration errors; for tests
// and examples with known-good configs.
func MustGenerate(cfg Config, r *xrand.Source) *Workload {
	w, err := Generate(cfg, r)
	if err != nil {
		panic(err)
	}
	return w
}

// Specs returns the analytical-model specs of all sites with the
// workload's λ.
func (w *Workload) Specs() []lrumodel.SiteSpec {
	specs := make([]lrumodel.SiteSpec, len(w.Sites))
	for j, s := range w.Sites {
		specs[j] = s.Spec(w.Cfg.Lambda)
	}
	return specs
}

// ServerDemand returns the demand row of server i (shared slice).
func (w *Workload) ServerDemand(i int) []float64 { return w.Demand[i] }

// SiteBytes returns o_j for every site.
func (w *Workload) SiteBytes() []int64 {
	out := make([]int64, len(w.Sites))
	for j, s := range w.Sites {
		out[j] = s.Bytes
	}
	return out
}

// Request is one synthetic HTTP request as seen by the CDN: issued by the
// client population behind Server, for object Object (1-based popularity
// rank) of site Site. Cacheable is false for the λ fraction of requests
// that return uncacheable or stale documents.
//
// Generation and Perished only vary under a dynamic catalog (see
// DynamicStream): Generation counts how many times the site slot has
// been republished with fresh content, and Perished marks the residual
// stale-link traffic that keeps arriving after the slot's current
// content has been withdrawn. The static Stream always emits generation
// 0, live — the zero values.
type Request struct {
	Server    int
	Site      int
	Object    int
	Cacheable bool
	// Generation is the catalog generation of the site's content this
	// request asks for; replicas placed for an older generation cannot
	// serve it.
	Generation int
	// Perished marks a request for content that has been withdrawn from
	// the catalog (a stale link): only the origin can answer it, with a
	// 404-equivalent response.
	Perished bool
}

// Size returns the object's byte size.
func (w *Workload) Size(site, object int) int64 {
	return w.Sites[site].Objects[object-1]
}

// Stream draws an endless i.i.d. request sequence from the workload's
// demand matrix (the independent reference model that both the analytical
// model and the paper's simulation assume).
type Stream struct {
	w    *Workload
	r    *xrand.Source
	cdf  []float64 // flattened server×site CDF
	cols int
	// recent[i] is server i's ring buffer of recent (site, object)
	// pairs for temporal-locality repeats; nil when LocalityProb = 0.
	recent  [][]recentRef
	nextIdx []int
}

type recentRef struct{ site, object int }

// NewStream creates a request stream over w driven by r.
func NewStream(w *Workload, r *xrand.Source) *Stream {
	s := &Stream{w: w, r: r, cols: len(w.Sites)}
	if w.Cfg.LocalityProb > 0 {
		depth := w.Cfg.LocalityDepth
		if depth == 0 {
			depth = 256
		}
		s.recent = make([][]recentRef, w.Cfg.Servers)
		s.nextIdx = make([]int, w.Cfg.Servers)
		for i := range s.recent {
			s.recent[i] = make([]recentRef, 0, depth)
		}
	}
	s.cdf = make([]float64, w.Cfg.Servers*len(w.Sites))
	cum := 0.0
	idx := 0
	for i := 0; i < w.Cfg.Servers; i++ {
		for j := 0; j < len(w.Sites); j++ {
			cum += w.Demand[i][j]
			s.cdf[idx] = cum
			idx++
		}
	}
	// Normalize drift: demand sums to 1 by construction, but guard the
	// binary search anyway.
	s.cdf[len(s.cdf)-1] = 1
	return s
}

// Next draws the next request.
func (s *Stream) Next() Request {
	u := s.r.Float64()
	idx := sort.SearchFloat64s(s.cdf, u)
	if idx >= len(s.cdf) {
		idx = len(s.cdf) - 1
	}
	server := idx / s.cols
	site := idx % s.cols
	object := s.w.Sites[site].Zipf.Sample(s.r)

	// Temporal locality: with probability LocalityProb, repeat a
	// recent request of the same server instead of the fresh draw.
	if s.recent != nil {
		if buf := s.recent[server]; len(buf) > 0 && s.r.Float64() < s.w.Cfg.LocalityProb {
			ref := buf[s.r.Intn(len(buf))]
			site, object = ref.site, ref.object
		}
		s.remember(server, site, object)
	}
	return Request{
		Server:    server,
		Site:      site,
		Object:    object,
		Cacheable: s.r.Float64() >= s.w.Cfg.Lambda,
	}
}

// remember records (site, object) in server's recency ring.
func (s *Stream) remember(server, site, object int) {
	buf := s.recent[server]
	if len(buf) < cap(buf) {
		s.recent[server] = append(buf, recentRef{site, object})
		return
	}
	buf[s.nextIdx[server]] = recentRef{site, object}
	s.nextIdx[server] = (s.nextIdx[server] + 1) % cap(buf)
}
