// Dynamic catalogs: publish/perish churn on top of the static SURGE
// workload.
//
// The paper's workload (and Eq.(1)'s steady-state hit-ratio model)
// assumes a fixed catalog: every site exists for the whole run with a
// popularity drawn once. "Catalog Dynamics: Impact of Content Publishing
// and Perishing on the Performance of a LRU Cache" (Olmos et al.,
// PAPERS.md) models the regime real CDNs live in — content is published,
// draws a burst of attention, and perishes — and shows where the
// steady-state models go wrong. DynamicStream reproduces that regime on
// top of the existing workload:
//
//   - each of the M site slots carries a *generation* of content; a live
//     generation perishes after an exponential lifetime (rate PerishRate
//     per request), and Poisson publish events (rate PublishRate per
//     request) refill the longest-dead slot with generation g+1;
//   - a republished slot's popularity is re-sampled at birth from the
//     catalog's class-weight mix — new content does not inherit its
//     predecessor's popularity;
//   - a new release can open with a flash crowd: its weight is
//     multiplied by FlashCrowdBoost for the first FlashCrowdRequests
//     requests of its life;
//   - a slot can be an HLS-style segment chain (probability
//     SegmentChainProb at birth): a request that lands on it starts a
//     per-server session that fetches ChainLength consecutive segments
//     in rank order, like a viewer playing a stream;
//   - perished slots keep a small residual weight (PerishedWeight):
//     stale links and bookmarks keep producing requests the CDN must
//     answer with a 404 from the origin;
//   - optional regional diurnal modulation staggers each server's
//     volume share around the clock (DiurnalAmplitude, DiurnalPeriod).
//
// Keeping the number of slots fixed keeps every N×M matrix in the system
// (demand, placement, estimator) shape-stable while the content identity
// behind each column churns — which is exactly what makes placement
// decisions go stale.

package workload

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/xrand"
)

// DynamicConfig parameterizes catalog churn. The zero value disables
// every dynamic feature: a DynamicStream with a zero DynamicConfig is
// byte-identical to the static Stream (test-pinned).
type DynamicConfig struct {
	// PublishRate is the expected number of site publications per
	// request (a Poisson process on the request clock). Each publication
	// refills the longest-dead slot with a fresh content generation; if
	// every slot is live the event is dropped (the catalog is full).
	PublishRate float64
	// PerishRate is each live generation's death rate per request:
	// lifetimes are exponential with mean 1/PerishRate requests.
	PerishRate float64
	// PerishedWeight is the fraction of a slot's popularity that keeps
	// arriving as stale-link traffic after it perishes. 0 means use
	// DefaultPerishedWeight whenever churn is enabled.
	PerishedWeight float64
	// FlashCrowdBoost multiplies a newly published generation's weight
	// for its first FlashCrowdRequests requests. Values <= 1 disable
	// flash crowds.
	FlashCrowdBoost    float64
	FlashCrowdRequests int
	// SegmentChainProb is the probability that a (re)published slot is
	// an HLS-style segment chain; a request landing on a chain slot
	// starts a per-server session of ChainLength consecutive segments.
	SegmentChainProb float64
	// ChainLength is the session length in segments (default
	// DefaultChainLength when SegmentChainProb > 0).
	ChainLength int
	// DiurnalAmplitude modulates each server's share of the request
	// volume by 1 + A·sin(2π(t/Period + i/N)) — regions peak at
	// staggered phases. 0 disables; Period defaults to
	// DefaultDiurnalPeriod requests.
	DiurnalAmplitude float64
	DiurnalPeriod    int
}

// Defaults applied when churn is enabled and a knob is left zero.
const (
	DefaultPerishedWeight = 0.02
	DefaultChainLength    = 12
	DefaultDiurnalPeriod  = 200000
)

// Dynamic reports whether any dynamic feature is enabled. False means
// DynamicStream delegates every draw to the static Stream.
func (c DynamicConfig) Dynamic() bool {
	return c.PublishRate > 0 || c.PerishRate > 0 ||
		(c.FlashCrowdBoost > 1 && c.FlashCrowdRequests > 0) ||
		c.SegmentChainProb > 0 || c.DiurnalAmplitude > 0
}

// Validate reports a configuration error, or nil.
func (c DynamicConfig) Validate() error {
	switch {
	case c.PublishRate < 0 || c.PerishRate < 0:
		return fmt.Errorf("workload: negative churn rate (publish=%v perish=%v)", c.PublishRate, c.PerishRate)
	case c.PerishedWeight < 0 || c.PerishedWeight > 1:
		return fmt.Errorf("workload: PerishedWeight = %v", c.PerishedWeight)
	case c.FlashCrowdRequests < 0:
		return fmt.Errorf("workload: FlashCrowdRequests = %v", c.FlashCrowdRequests)
	case c.SegmentChainProb < 0 || c.SegmentChainProb > 1:
		return fmt.Errorf("workload: SegmentChainProb = %v", c.SegmentChainProb)
	case c.ChainLength < 0:
		return fmt.Errorf("workload: ChainLength = %v", c.ChainLength)
	case c.DiurnalAmplitude < 0 || c.DiurnalAmplitude > 1:
		return fmt.Errorf("workload: DiurnalAmplitude = %v", c.DiurnalAmplitude)
	case c.DiurnalPeriod < 0:
		return fmt.Errorf("workload: DiurnalPeriod = %v", c.DiurnalPeriod)
	}
	return nil
}

// slotState is one site slot's current content generation.
type slotState struct {
	gen    int
	live   bool
	bornAt int64 // request clock at the current generation's birth
	dieAt  int64 // scheduled perish time while live
	weight float64
	chain  bool
}

// chainSession is a server's in-progress segment-chain playback.
type chainSession struct {
	site int
	next int // next 1-based segment rank
	left int // segments remaining
}

// DynamicStream draws an endless request sequence from a catalog whose
// content churns. With a zero DynamicConfig it is the static Stream;
// otherwise each request advances a virtual clock (one tick per
// request), perish/publish/flash/diurnal events fire on that clock, and
// the server×site sampling CDF is rebuilt lazily on each event.
//
// Determinism: the request draws consume the same root RNG the static
// Stream uses, and all churn draws (lifetimes, publish gaps, birth
// popularity, chain coin-flips) come from a Split sub-stream — Split
// does not advance the parent, so enabling churn never perturbs the
// underlying draw machinery, and equal (workload, config, seed) triples
// yield identical request sequences.
type DynamicStream struct {
	w    *Workload
	cfg  DynamicConfig
	base *Stream
	// churn is nil when cfg.Dynamic() is false — the delegate marker.
	churn *xrand.Source

	t     int64
	slots []slotState
	// spread[i][j] = Demand[i][j] / Weight[j]: the per-server share of
	// site j's volume, invariant under popularity re-sampling.
	spread    [][]float64
	cdf       []float64 // flattened server×site CDF, scaled by total
	total     float64
	cols      int
	dirty     bool
	nextEvent int64
	nextPub   int64
	sessions  []chainSession

	perishedWeight float64
	chainLen       int
	diurnalPeriod  int64

	publishes, perishes int64
}

// NewDynamicStream creates a dynamic request stream over w driven by r.
// The same (w, cfg, seed) triple always yields the identical sequence,
// and a zero cfg yields exactly NewStream(w, r)'s sequence.
func NewDynamicStream(w *Workload, cfg DynamicConfig, r *xrand.Source) (*DynamicStream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &DynamicStream{w: w, cfg: cfg, base: NewStream(w, r), cols: len(w.Sites)}
	if !cfg.Dynamic() {
		return s, nil
	}
	if w.Cfg.LocalityProb > 0 {
		// The chain sessions are the dynamic stream's locality model;
		// layering the static recency buffer on top would double-count.
		return nil, fmt.Errorf("workload: dynamic catalog and LocalityProb are mutually exclusive")
	}
	s.churn = r.Split("catalog-churn")
	s.perishedWeight = cfg.PerishedWeight
	if s.perishedWeight == 0 {
		s.perishedWeight = DefaultPerishedWeight
	}
	s.chainLen = cfg.ChainLength
	if s.chainLen == 0 {
		s.chainLen = DefaultChainLength
	}
	s.diurnalPeriod = int64(cfg.DiurnalPeriod)
	if s.diurnalPeriod == 0 {
		s.diurnalPeriod = DefaultDiurnalPeriod
	}
	s.sessions = make([]chainSession, w.Cfg.Servers)
	s.slots = make([]slotState, s.cols)
	for j := range s.slots {
		s.slots[j] = slotState{
			live: true,
			// The initial catalog is mature: no flash crowd.
			bornAt: math.MinInt64 / 2,
			dieAt:  math.MaxInt64,
			weight: w.Sites[j].Weight,
			chain:  s.churn.Float64() < cfg.SegmentChainProb,
		}
		if cfg.PerishRate > 0 {
			s.slots[j].dieAt = 1 + int64(s.churn.ExpFloat64()/cfg.PerishRate)
		}
	}
	s.nextPub = math.MaxInt64
	if cfg.PublishRate > 0 {
		s.nextPub = 1 + int64(s.churn.ExpFloat64()/cfg.PublishRate)
	}
	s.spread = make([][]float64, w.Cfg.Servers)
	for i := range s.spread {
		s.spread[i] = make([]float64, s.cols)
		for j := range s.spread[i] {
			if wj := w.Sites[j].Weight; wj > 0 {
				s.spread[i][j] = w.Demand[i][j] / wj
			}
		}
	}
	s.cdf = make([]float64, w.Cfg.Servers*s.cols)
	s.dirty = true
	s.scheduleNextEvent()
	return s, nil
}

// MustNewDynamicStream is NewDynamicStream for known-good configs.
func MustNewDynamicStream(w *Workload, cfg DynamicConfig, r *xrand.Source) *DynamicStream {
	s, err := NewDynamicStream(w, cfg, r)
	if err != nil {
		panic(err)
	}
	return s
}

// Generation returns the slot's current content generation.
func (s *DynamicStream) Generation(site int) int {
	if s.churn == nil {
		return 0
	}
	return s.slots[site].gen
}

// Live reports whether the slot's current generation is still published.
func (s *DynamicStream) Live(site int) bool {
	if s.churn == nil {
		return true
	}
	return s.slots[site].live
}

// Publishes and Perishes report the catalog turnover so far.
func (s *DynamicStream) Publishes() int64 { return s.publishes }
func (s *DynamicStream) Perishes() int64  { return s.perishes }

// Next draws the next request.
func (s *DynamicStream) Next() Request {
	if s.churn == nil {
		return s.base.Next()
	}
	t := s.t
	s.t++
	if t >= s.nextEvent {
		s.processEvents(t)
	}
	if s.dirty {
		s.rebuild(t)
	}

	r := s.base.r
	u := r.Float64() * s.total
	idx := sort.SearchFloat64s(s.cdf, u)
	if idx >= len(s.cdf) {
		idx = len(s.cdf) - 1
	}
	server := idx / s.cols
	site := idx % s.cols

	// An in-progress chain session overrides the site draw: the viewer
	// keeps fetching the next segment of the stream it is playing.
	var object int
	if sess := &s.sessions[server]; sess.left > 0 {
		site = sess.site
		object = sess.next
		sess.next = sess.next%len(s.w.Sites[site].Objects) + 1
		sess.left--
	} else {
		object = s.w.Sites[site].Zipf.Sample(r)
		if s.slots[site].chain && s.chainLen > 1 {
			// Join the stream at a popularity-weighted entry point and
			// play ChainLength segments from there (cyclic in rank).
			*sess = chainSession{
				site: site,
				next: object%len(s.w.Sites[site].Objects) + 1,
				left: s.chainLen - 1,
			}
		}
	}

	sl := &s.slots[site]
	return Request{
		Server:     server,
		Site:       site,
		Object:     object,
		Cacheable:  r.Float64() >= s.w.Cfg.Lambda,
		Generation: sl.gen,
		Perished:   !sl.live,
	}
}

// processEvents fires every perish/publish event due at or before t and
// reschedules the next wake-up.
func (s *DynamicStream) processEvents(t int64) {
	for j := range s.slots {
		sl := &s.slots[j]
		if sl.live && sl.dieAt <= t {
			sl.live = false
			s.perishes++
			s.dirty = true
		}
	}
	for s.nextPub <= t {
		s.publish(s.nextPub)
		s.nextPub += 1 + int64(s.churn.ExpFloat64()/s.cfg.PublishRate)
	}
	// Every scheduled wake-up changes the effective weights — a perish,
	// a publish, a flash window closing, or a diurnal step — so any
	// fired event forces a CDF rebuild.
	s.dirty = true
	s.scheduleNextEvent()
}

// publish refills the longest-dead slot with a fresh generation. With
// every slot live the event is dropped: the catalog is at capacity.
func (s *DynamicStream) publish(t int64) {
	j := -1
	var oldest int64 = math.MaxInt64
	for k := range s.slots {
		if sl := &s.slots[k]; !sl.live && sl.dieAt < oldest {
			j, oldest = k, sl.dieAt
		}
	}
	if j < 0 {
		return
	}
	sl := &s.slots[j]
	sl.gen++
	sl.live = true
	sl.bornAt = t
	// Popularity is re-sampled at birth from the catalog's class-weight
	// mix: the replacement of a blockbuster is usually not one.
	sl.weight = s.w.Sites[s.churn.Intn(s.cols)].Weight
	sl.chain = s.churn.Float64() < s.cfg.SegmentChainProb
	sl.dieAt = math.MaxInt64
	if s.cfg.PerishRate > 0 {
		sl.dieAt = t + 1 + int64(s.churn.ExpFloat64()/s.cfg.PerishRate)
	}
	s.publishes++
	s.dirty = true
}

// scheduleNextEvent finds the next request-clock tick at which anything
// changes: a perish, a publish, a flash window closing, or a diurnal
// step. Between events Next is a pure CDF draw.
func (s *DynamicStream) scheduleNextEvent() {
	next := s.nextPub
	for j := range s.slots {
		sl := &s.slots[j]
		if !sl.live {
			continue
		}
		if sl.dieAt < next {
			next = sl.dieAt
		}
		if s.cfg.FlashCrowdBoost > 1 && s.cfg.FlashCrowdRequests > 0 {
			if end := sl.bornAt + int64(s.cfg.FlashCrowdRequests); end > s.t && end < next {
				next = end
			}
		}
	}
	if s.cfg.DiurnalAmplitude > 0 {
		// Stepwise diurnal curve: 32 steps per period keeps the rebuild
		// cost negligible while the modulation stays smooth.
		step := s.diurnalPeriod / 32
		if step < 1 {
			step = 1
		}
		if boundary := (s.t/step + 1) * step; boundary < next {
			next = boundary
		}
	}
	s.nextEvent = next
}

// rebuild recomputes the sampling CDF from the current slot weights,
// flash windows and diurnal phase.
func (s *DynamicStream) rebuild(t int64) {
	effW := make([]float64, s.cols)
	for j := range s.slots {
		sl := &s.slots[j]
		w := sl.weight
		switch {
		case !sl.live:
			w *= s.perishedWeight
		case s.cfg.FlashCrowdBoost > 1 && t < sl.bornAt+int64(s.cfg.FlashCrowdRequests):
			w *= s.cfg.FlashCrowdBoost
		}
		effW[j] = w
	}
	n := s.w.Cfg.Servers
	cum := 0.0
	idx := 0
	for i := 0; i < n; i++ {
		di := 1.0
		if s.cfg.DiurnalAmplitude > 0 {
			phase := float64(t)/float64(s.diurnalPeriod) + float64(i)/float64(n)
			di = 1 + s.cfg.DiurnalAmplitude*math.Sin(2*math.Pi*phase)
		}
		for j := 0; j < s.cols; j++ {
			cum += s.spread[i][j] * effW[j] * di
			s.cdf[idx] = cum
			idx++
		}
	}
	s.total = cum
	s.dirty = false
}
