package workload

import (
	"testing"

	"repro/internal/xrand"
)

// churningConfig enables every dynamic feature at rates that exercise
// them within a short draw budget.
func churningConfig() DynamicConfig {
	return DynamicConfig{
		PublishRate:        0.004,
		PerishRate:         0.0005,
		FlashCrowdBoost:    8,
		FlashCrowdRequests: 2000,
		SegmentChainProb:   0.5,
		ChainLength:        6,
		DiurnalAmplitude:   0.3,
		DiurnalPeriod:      20000,
	}
}

func TestDynamicConfigValidate(t *testing.T) {
	mutations := []func(*DynamicConfig){
		func(c *DynamicConfig) { c.PublishRate = -1 },
		func(c *DynamicConfig) { c.PerishRate = -0.1 },
		func(c *DynamicConfig) { c.PerishedWeight = 1.5 },
		func(c *DynamicConfig) { c.FlashCrowdRequests = -1 },
		func(c *DynamicConfig) { c.SegmentChainProb = 2 },
		func(c *DynamicConfig) { c.ChainLength = -3 },
		func(c *DynamicConfig) { c.DiurnalAmplitude = 1.2 },
		func(c *DynamicConfig) { c.DiurnalPeriod = -1 },
	}
	w := MustGenerate(smallConfig(), xrand.New(1))
	for i, m := range mutations {
		cfg := churningConfig()
		m(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
		if _, err := NewDynamicStream(w, cfg, xrand.New(1)); err == nil {
			t.Errorf("mutation %d: NewDynamicStream accepted invalid config", i)
		}
	}
}

func TestDynamicRejectsLocality(t *testing.T) {
	cfg := smallConfig()
	cfg.LocalityProb = 0.3
	w := MustGenerate(cfg, xrand.New(1))
	if _, err := NewDynamicStream(w, churningConfig(), xrand.New(1)); err == nil {
		t.Fatal("dynamic stream accepted LocalityProb > 0")
	}
	// A zero (static) dynamic config delegates to the static stream and
	// must keep working with locality on.
	if _, err := NewDynamicStream(w, DynamicConfig{}, xrand.New(1)); err != nil {
		t.Fatalf("static delegate rejected locality workload: %v", err)
	}
}

// TestZeroChurnByteIdentical pins the tentpole invariant: a
// DynamicStream with the zero config emits exactly the static Stream's
// request sequence, field for field — the dynamic machinery costs
// nothing (not even an RNG draw) until a feature is enabled.
func TestZeroChurnByteIdentical(t *testing.T) {
	w := MustGenerate(smallConfig(), xrand.New(3))
	static := NewStream(w, xrand.New(42))
	dyn := MustNewDynamicStream(w, DynamicConfig{}, xrand.New(42))
	for k := 0; k < 200000; k++ {
		a, b := static.Next(), dyn.Next()
		if a != b {
			t.Fatalf("draw %d: static %+v != dynamic %+v", k, a, b)
		}
		if b.Generation != 0 || b.Perished {
			t.Fatalf("draw %d: zero-churn stream emitted generation %d, perished %v",
				k, b.Generation, b.Perished)
		}
	}
}

func TestDynamicDeterministicPerSeed(t *testing.T) {
	w := MustGenerate(smallConfig(), xrand.New(3))
	a := MustNewDynamicStream(w, churningConfig(), xrand.New(7))
	b := MustNewDynamicStream(w, churningConfig(), xrand.New(7))
	c := MustNewDynamicStream(w, churningConfig(), xrand.New(8))
	diverged := false
	for k := 0; k < 100000; k++ {
		ra, rb, rc := a.Next(), b.Next(), c.Next()
		if ra != rb {
			t.Fatalf("draw %d: same seed diverged: %+v != %+v", k, ra, rb)
		}
		if ra != rc {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical traces")
	}
	if a.Publishes() != b.Publishes() || a.Perishes() != b.Perishes() {
		t.Fatalf("same seed, different churn: %d/%d vs %d/%d",
			a.Publishes(), a.Perishes(), b.Publishes(), b.Perishes())
	}
}

func TestDynamicChurnAdvancesGenerations(t *testing.T) {
	w := MustGenerate(smallConfig(), xrand.New(3))
	s := MustNewDynamicStream(w, churningConfig(), xrand.New(7))
	var perishedReqs, freshGen int
	for k := 0; k < 200000; k++ {
		req := s.Next()
		if req.Perished {
			perishedReqs++
		}
		if req.Generation > 0 {
			freshGen++
		}
		if req.Site < 0 || req.Site >= len(w.Sites) {
			t.Fatalf("draw %d: site %d out of range", k, req.Site)
		}
		if req.Object < 1 || req.Object > len(w.Sites[req.Site].Objects) {
			t.Fatalf("draw %d: object %d out of range", k, req.Object)
		}
	}
	if s.Publishes() == 0 || s.Perishes() == 0 {
		t.Fatalf("no churn after 200k draws: %d publishes, %d perishes",
			s.Publishes(), s.Perishes())
	}
	if perishedReqs == 0 {
		t.Fatal("no stale-link (perished) requests despite PerishedWeight > 0")
	}
	if freshGen == 0 {
		t.Fatal("no requests for republished generations")
	}
	maxGen := 0
	for j := range w.Sites {
		if g := s.Generation(j); g > maxGen {
			maxGen = g
		}
	}
	if maxGen == 0 {
		t.Fatal("every slot still at generation 0 after sustained churn")
	}
}

// TestDynamicPerishedMatchesLiveness checks the per-request flags agree
// with the stream's own slot state: a request flagged Perished must come
// from a dead slot at the generation it carries.
func TestDynamicPerishedMatchesLiveness(t *testing.T) {
	w := MustGenerate(smallConfig(), xrand.New(3))
	cfg := DynamicConfig{PublishRate: 0.004, PerishRate: 0.0005}
	s := MustNewDynamicStream(w, cfg, xrand.New(9))
	for k := 0; k < 100000; k++ {
		req := s.Next()
		cur, live := s.Generation(req.Site), s.Live(req.Site)
		if req.Generation > cur {
			t.Fatalf("draw %d: request generation %d ahead of slot generation %d",
				k, req.Generation, cur)
		}
		if req.Generation == cur && req.Perished == live {
			t.Fatalf("draw %d: current-generation request Perished=%v but slot live=%v",
				k, req.Perished, live)
		}
	}
}

// TestDynamicChainsRunConsecutively verifies segment-chain sessions:
// once a chain site is drawn at some server, that server's next
// requests walk consecutive objects of the same site.
func TestDynamicChainsRunConsecutively(t *testing.T) {
	w := MustGenerate(smallConfig(), xrand.New(3))
	cfg := DynamicConfig{
		PublishRate:      0.01,
		PerishRate:       0.001,
		SegmentChainProb: 1, // every published site is a chain
		ChainLength:      4,
	}
	s := MustNewDynamicStream(w, cfg, xrand.New(5))
	type last struct {
		site, object int
	}
	prev := map[int]last{}
	consecutive := 0
	for k := 0; k < 100000; k++ {
		req := s.Next()
		if p, ok := prev[req.Server]; ok &&
			req.Site == p.site && req.Object == p.object%len(w.Sites[p.site].Objects)+1 {
			consecutive++
		}
		prev[req.Server] = last{req.Site, req.Object}
	}
	if consecutive < 1000 {
		t.Fatalf("only %d consecutive-segment pairs in 100k draws; chains not running", consecutive)
	}
}

func BenchmarkDynamicStreamNext(b *testing.B) {
	w := MustGenerate(smallConfig(), xrand.New(3))
	s := MustNewDynamicStream(w, churningConfig(), xrand.New(7))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Next()
	}
}
