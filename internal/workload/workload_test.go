package workload

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// smallConfig keeps tests fast: 8 servers, 8 sites, 100 objects each.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Servers = 8
	cfg.LowSites, cfg.MediumSites, cfg.HighSites = 2, 4, 2
	cfg.ObjectsPerSite = 100
	return cfg
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if got := DefaultConfig().Sites(); got != 20 {
		t.Fatalf("default M = %d, want 20 (5 low + 10 medium + 5 high)", got)
	}
	if DefaultConfig().Servers != 50 {
		t.Fatal("default N != 50")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Servers = 0 },
		func(c *Config) { c.LowSites, c.MediumSites, c.HighSites = 0, 0, 0 },
		func(c *Config) { c.MediumSites = -1 },
		func(c *Config) { c.HighWeight = -2 },
		func(c *Config) { c.ObjectsPerSite = 0 },
		func(c *Config) { c.Theta = -0.5 },
		func(c *Config) { c.Lambda = 1.5 },
		func(c *Config) { c.TailProb = -0.1 },
		func(c *Config) { c.TailH = c.TailK - 1 },
		func(c *Config) { c.SpreadSigmaFactor = -1 },
	}
	for i, m := range mutations {
		cfg := DefaultConfig()
		m(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
		if _, err := Generate(cfg, xrand.New(1)); err == nil {
			t.Errorf("mutation %d: Generate accepted invalid config", i)
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	cfg := smallConfig()
	w := MustGenerate(cfg, xrand.New(1))
	if len(w.Sites) != cfg.Sites() {
		t.Fatalf("%d sites, want %d", len(w.Sites), cfg.Sites())
	}
	classes := map[Class]int{}
	var totalBytes int64
	for j, s := range w.Sites {
		if s.ID != j {
			t.Fatalf("site %d has ID %d", j, s.ID)
		}
		if len(s.Objects) != cfg.ObjectsPerSite {
			t.Fatalf("site %d has %d objects", j, len(s.Objects))
		}
		var sum int64
		for _, sz := range s.Objects {
			if sz < 1 {
				t.Fatalf("site %d has object of size %d", j, sz)
			}
			sum += sz
		}
		if sum != s.Bytes {
			t.Fatalf("site %d Bytes=%d, sum=%d", j, s.Bytes, sum)
		}
		totalBytes += sum
		classes[s.Class]++
	}
	if classes[ClassLow] != 2 || classes[ClassMedium] != 4 || classes[ClassHigh] != 2 {
		t.Fatalf("class mix %v", classes)
	}
	if w.TotalBytes != totalBytes {
		t.Fatalf("TotalBytes %d, want %d", w.TotalBytes, totalBytes)
	}
	wantAvg := float64(totalBytes) / float64(cfg.Sites()*cfg.ObjectsPerSite)
	if math.Abs(w.AvgObjectBytes-wantAvg) > 1e-9 {
		t.Fatalf("AvgObjectBytes %v, want %v", w.AvgObjectBytes, wantAvg)
	}
}

func TestDemandNormalized(t *testing.T) {
	w := MustGenerate(smallConfig(), xrand.New(2))
	total := 0.0
	for i := range w.Demand {
		for j := range w.Demand[i] {
			if w.Demand[i][j] < 0 {
				t.Fatalf("negative demand at (%d,%d)", i, j)
			}
			total += w.Demand[i][j]
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("demand sums to %v, want 1", total)
	}
}

func TestDemandRespectsSiteWeights(t *testing.T) {
	w := MustGenerate(smallConfig(), xrand.New(3))
	for j, s := range w.Sites {
		col := 0.0
		for i := range w.Demand {
			col += w.Demand[i][j]
		}
		if math.Abs(col-s.Weight) > 1e-9 {
			t.Fatalf("site %d demand column %v, weight %v", j, col, s.Weight)
		}
	}
}

func TestHighClassOutweighsLow(t *testing.T) {
	w := MustGenerate(smallConfig(), xrand.New(4))
	var low, high float64
	for _, s := range w.Sites {
		switch s.Class {
		case ClassLow:
			low += s.Weight
		case ClassHigh:
			high += s.Weight
		}
	}
	if high <= low {
		t.Fatalf("high-class weight %v <= low-class %v", high, low)
	}
}

func TestDemandSpreadAcrossServers(t *testing.T) {
	// Per §5.1 each server's share of a site is ~N(1/N, 1/4N) truncated
	// to ±3σ, so shares must lie in [1/N - 3/4N, 1/N + 3/4N] before
	// renormalization — approximately [0.25/N, 1.75/N] after.
	cfg := smallConfig()
	w := MustGenerate(cfg, xrand.New(5))
	n := float64(cfg.Servers)
	for j, s := range w.Sites {
		for i := range w.Demand {
			share := w.Demand[i][j] / s.Weight
			if share < 0.1/n || share > 2.5/n {
				t.Fatalf("site %d server %d share %v implausible for N(1/N,1/4N)", j, i, share)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(smallConfig(), xrand.New(9))
	b := MustGenerate(smallConfig(), xrand.New(9))
	if a.TotalBytes != b.TotalBytes {
		t.Fatal("TotalBytes differs between identical seeds")
	}
	for i := range a.Demand {
		for j := range a.Demand[i] {
			if a.Demand[i][j] != b.Demand[i][j] {
				t.Fatalf("demand (%d,%d) differs", i, j)
			}
		}
	}
	c := MustGenerate(smallConfig(), xrand.New(10))
	if c.TotalBytes == a.TotalBytes {
		t.Fatal("different seeds produced identical catalogs (suspicious)")
	}
}

func TestSpecs(t *testing.T) {
	cfg := smallConfig()
	cfg.Lambda = 0.1
	w := MustGenerate(cfg, xrand.New(11))
	specs := w.Specs()
	if len(specs) != cfg.Sites() {
		t.Fatalf("%d specs", len(specs))
	}
	for _, s := range specs {
		if s.Objects != cfg.ObjectsPerSite || s.Theta != cfg.Theta || s.Lambda != 0.1 {
			t.Fatalf("bad spec %+v", s)
		}
	}
}

func TestSiteBytesAndSize(t *testing.T) {
	w := MustGenerate(smallConfig(), xrand.New(12))
	bytes := w.SiteBytes()
	for j, s := range w.Sites {
		if bytes[j] != s.Bytes {
			t.Fatalf("SiteBytes[%d] mismatch", j)
		}
	}
	if got := w.Size(0, 1); got != w.Sites[0].Objects[0] {
		t.Fatalf("Size(0,1) = %d", got)
	}
	if got := w.Size(2, 100); got != w.Sites[2].Objects[99] {
		t.Fatalf("Size(2,100) = %d", got)
	}
}

func TestStreamMatchesDemand(t *testing.T) {
	cfg := smallConfig()
	w := MustGenerate(cfg, xrand.New(13))
	s := NewStream(w, xrand.New(14))
	const n = 400000
	counts := make([][]float64, cfg.Servers)
	for i := range counts {
		counts[i] = make([]float64, cfg.Sites())
	}
	for i := 0; i < n; i++ {
		req := s.Next()
		if req.Server < 0 || req.Server >= cfg.Servers {
			t.Fatalf("server %d out of range", req.Server)
		}
		if req.Site < 0 || req.Site >= cfg.Sites() {
			t.Fatalf("site %d out of range", req.Site)
		}
		if req.Object < 1 || req.Object > cfg.ObjectsPerSite {
			t.Fatalf("object %d out of range", req.Object)
		}
		counts[req.Server][req.Site]++
	}
	for i := range counts {
		for j := range counts[i] {
			got := counts[i][j] / n
			want := w.Demand[i][j]
			tol := 5*math.Sqrt(want/n) + 1e-4
			if math.Abs(got-want) > tol {
				t.Errorf("demand (%d,%d): empirical %v vs %v", i, j, got, want)
			}
		}
	}
}

func TestStreamZipfWithinSite(t *testing.T) {
	cfg := smallConfig()
	w := MustGenerate(cfg, xrand.New(15))
	s := NewStream(w, xrand.New(16))
	rank1, total := 0, 0
	for i := 0; i < 300000; i++ {
		req := s.Next()
		if req.Site == 0 {
			total++
			if req.Object == 1 {
				rank1++
			}
		}
	}
	if total == 0 {
		t.Fatal("site 0 never requested")
	}
	got := float64(rank1) / float64(total)
	want := w.Sites[0].Zipf.PMF(1)
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("rank-1 frequency %v, want %v", got, want)
	}
}

func TestStreamLambda(t *testing.T) {
	cfg := smallConfig()
	cfg.Lambda = 0.25
	w := MustGenerate(cfg, xrand.New(17))
	s := NewStream(w, xrand.New(18))
	uncacheable := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if !s.Next().Cacheable {
			uncacheable++
		}
	}
	got := float64(uncacheable) / n
	if math.Abs(got-0.25) > 0.01 {
		t.Fatalf("uncacheable fraction %v, want 0.25", got)
	}
}

func TestStreamLambdaZeroAllCacheable(t *testing.T) {
	w := MustGenerate(smallConfig(), xrand.New(19))
	s := NewStream(w, xrand.New(20))
	for i := 0; i < 10000; i++ {
		if !s.Next().Cacheable {
			t.Fatal("uncacheable request with lambda = 0")
		}
	}
}

func TestValidateLocality(t *testing.T) {
	cfg := smallConfig()
	cfg.LocalityProb = 1.5
	if cfg.Validate() == nil {
		t.Fatal("LocalityProb > 1 accepted")
	}
	cfg = smallConfig()
	cfg.LocalityDepth = -1
	if cfg.Validate() == nil {
		t.Fatal("negative LocalityDepth accepted")
	}
}

func TestLocalityIncreasesRepeats(t *testing.T) {
	count := func(prob float64, seed uint64) float64 {
		cfg := smallConfig()
		cfg.LocalityProb = prob
		cfg.LocalityDepth = 64
		w := MustGenerate(cfg, xrand.New(21))
		s := NewStream(w, xrand.New(seed))
		// Measure the per-server repeat rate within a short window.
		const n = 100000
		window := make(map[int][]Request)
		repeats, total := 0, 0
		for i := 0; i < n; i++ {
			req := s.Next()
			recent := window[req.Server]
			for _, prev := range recent {
				if prev.Site == req.Site && prev.Object == req.Object {
					repeats++
					break
				}
			}
			total++
			recent = append(recent, req)
			if len(recent) > 32 {
				recent = recent[1:]
			}
			window[req.Server] = recent
		}
		return float64(repeats) / float64(total)
	}
	irm := count(0, 22)
	local := count(0.5, 22)
	// Zipf concentration alone produces repeats under IRM; the locality
	// knob must add clearly on top of that baseline.
	if local < irm+0.15 {
		t.Fatalf("locality did not raise repeat rate: IRM %.4f vs local %.4f", irm, local)
	}
}

func TestLocalityPreservesMarginals(t *testing.T) {
	// Repeats re-draw from the same server's recent requests, so the
	// per-server request share must remain close to the demand matrix.
	cfg := smallConfig()
	cfg.LocalityProb = 0.4
	w := MustGenerate(cfg, xrand.New(23))
	s := NewStream(w, xrand.New(24))
	const n = 200000
	perServer := make([]float64, cfg.Servers)
	for i := 0; i < n; i++ {
		perServer[s.Next().Server]++
	}
	for i := range perServer {
		want := 0.0
		for j := range w.Demand[i] {
			want += w.Demand[i][j]
		}
		got := perServer[i] / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("server %d share %v, want %v", i, got, want)
		}
	}
}

func TestClassString(t *testing.T) {
	if ClassLow.String() != "low" || ClassMedium.String() != "medium" || ClassHigh.String() != "high" {
		t.Fatal("class names wrong")
	}
	if Class(99).String() != "Class(99)" {
		t.Fatal("unknown class formatting wrong")
	}
}

func TestMustGeneratePanicsOnBadConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.Servers = 0
	defer func() {
		if recover() == nil {
			t.Fatal("MustGenerate did not panic")
		}
	}()
	MustGenerate(cfg, xrand.New(1))
}

func BenchmarkGenerateDefault(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		MustGenerate(cfg, xrand.New(uint64(i)))
	}
}

func BenchmarkStreamNext(b *testing.B) {
	w := MustGenerate(DefaultConfig(), xrand.New(1))
	s := NewStream(w, xrand.New(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next()
	}
}
