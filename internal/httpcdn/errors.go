package httpcdn

import "errors"

// Sentinel errors for the serving path, usable with errors.Is. Fetch and
// the edge-internal upstream fetches wrap these with context (%w), so
// callers branch on failure *class* — timeout vs. dead component vs.
// wrong bytes — instead of matching message strings.
var (
	// ErrEdgeTimeout reports that an upstream fetch exceeded its
	// per-attempt timeout (a hung or blackholed component).
	ErrEdgeTimeout = errors.New("httpcdn: upstream fetch timed out")
	// ErrPeerDown reports that a peer edge could not be reached or
	// answered with an error for every retry attempt.
	ErrPeerDown = errors.New("httpcdn: peer unreachable")
	// ErrEdgeDown reports that the first-hop edge itself could not be
	// reached by the client.
	ErrEdgeDown = errors.New("httpcdn: edge unreachable")
	// ErrOriginDown reports that a site's origin could not be reached or
	// answered with an error for every retry attempt.
	ErrOriginDown = errors.New("httpcdn: origin unreachable")
	// ErrUpstreamStatus reports a non-200 answer from an upstream that
	// was reachable (e.g. an injected 503).
	ErrUpstreamStatus = errors.New("httpcdn: unexpected upstream status")
	// ErrBadStatus reports a non-200 answer from the edge to a client
	// fetch that does not carry a more specific X-Cdn-Error class.
	ErrBadStatus = errors.New("httpcdn: edge answered with an error status")
	// ErrCorruptPayload reports a response body that does not match the
	// object's deterministic byte pattern.
	ErrCorruptPayload = errors.New("httpcdn: corrupted payload")
)

// ErrorHeader carries the failure class from edge.handle to the client,
// so Cluster.Fetch can rewrap the matching sentinel on its side of the
// wire.
const ErrorHeader = "X-Cdn-Error"

// ErrorClass maps a serving-path error to its wire class.
func ErrorClass(err error) string {
	switch {
	case errors.Is(err, ErrEdgeTimeout):
		return "timeout"
	case errors.Is(err, ErrOriginDown):
		return "origin-down"
	case errors.Is(err, ErrPeerDown):
		return "peer-down"
	case errors.Is(err, ErrUpstreamStatus):
		return "upstream-status"
	default:
		return "internal"
	}
}

// ClassError is ErrorClass's inverse: the sentinel for a wire class, or
// nil for unknown classes.
func ClassError(class string) error {
	switch class {
	case "timeout":
		return ErrEdgeTimeout
	case "origin-down":
		return ErrOriginDown
	case "peer-down":
		return ErrPeerDown
	case "upstream-status":
		return ErrUpstreamStatus
	default:
		return nil
	}
}
