// Package httpcdn materializes the CDN model as real HTTP servers: one
// origin server per hosted site and one edge server per CDN node, all
// listening on loopback sockets. It exists to show that the library's
// placement decisions drive an actual content delivery network, not only
// the trace-driven simulator:
//
//   - an edge that holds a replica of a site serves its objects
//     directly;
//   - otherwise the edge consults its byte-bounded LRU cache;
//   - on a miss it fetches from the nearest replicator (the placement's
//     SN entry — another edge, or the site's origin) over real HTTP,
//     stores the body, and serves it.
//
// Peer fetches carry an internal header so a peer that no longer holds
// the object falls through to the origin instead of recursing through
// the mesh. Object bodies are deterministic byte patterns checked
// end-to-end by the tests.
//
// The artificial per-hop delay of the paper's latency model (§5.1) can
// be injected to make measured latencies meaningful in the demo binary.
package httpcdn

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// Source values reported in the X-Cdn-Source response header (the
// canonical obs schema values).
const (
	SourceReplica = obs.SourceReplica
	SourceCache   = obs.SourceCache
	SourcePeer    = obs.SourcePeer
	SourceOrigin  = obs.SourceOrigin
)

// internalHeader marks edge-to-edge fetches to prevent recursion.
const internalHeader = "X-Cdn-Internal"

// Config controls a cluster.
type Config struct {
	// PerHopDelay is the artificial network delay per topology hop,
	// applied by the fetching edge before contacting a remote source
	// (0 for tests; ~1ms/hop makes the demo's latencies meaningful).
	PerHopDelay time.Duration
	// MaxObjectBytes caps synthetic payload sizes so heavy-tailed
	// catalogs do not ship tens of megabytes through the demo.
	MaxObjectBytes int64
	// RevalidateOnHit enforces strong consistency the way §3.3's
	// server-based invalidation does, but with HTTP's native
	// machinery: every cache hit sends a conditional GET
	// (If-None-Match) to the origin and serves the cached body only
	// on 304 Not Modified. Off = weak consistency (serve cached
	// bodies unconditionally, possibly stale).
	RevalidateOnHit bool
	// Metrics, when non-nil, receives per-edge serve/hit/miss/eviction
	// counters, resident-byte gauges and per-source latency histograms
	// (see DESIGN.md "Observability" for the metric names).
	Metrics *obs.Registry
	// Tracer, when non-nil, receives one JSONL event per edge-served
	// request in the shared obs.Event schema.
	Tracer *obs.Tracer
	// RequestTap, when non-nil, is invoked once per client-facing
	// request an edge accepts (internal edge-to-edge fetches excluded),
	// before the request is served. The online control plane hangs its
	// demand estimator here; the tap must be safe for concurrent use
	// and fast — it runs on the serving path.
	RequestTap func(edge, site int)
}

// DefaultConfig returns a zero-delay, 64 KiB-capped configuration.
func DefaultConfig() Config {
	return Config{MaxObjectBytes: 64 << 10}
}

// Cluster is a running set of origin and edge HTTP servers.
type Cluster struct {
	sc  *scenario.Scenario
	cfg Config

	// pl is the live placement, swapped atomically by SwapPlacement so
	// the control plane can re-place replicas while requests are in
	// flight. Each request loads the pointer once and routes the whole
	// request against that snapshot.
	pl atomic.Pointer[core.Placement]

	origins []*httptest.Server // one per site
	edges   []*edge            // one per CDN server
	client  *http.Client

	// sourceLatency holds the per-source serve-latency histograms when
	// cfg.Metrics is set.
	sourceLatency map[string]*obs.Histogram

	// versions tracks origin-side object versions for the consistency
	// machinery; bumped by ModifyObject.
	verMu    sync.Mutex
	versions map[cache.Key]int
}

// version returns the current origin-side version of an object.
func (c *Cluster) version(site, object int) int {
	c.verMu.Lock()
	defer c.verMu.Unlock()
	return c.versions[cache.Key{Site: site, Object: object}]
}

// ModifyObject bumps an object's version at its origin, invalidating
// every cached copy (under RevalidateOnHit) and changing its payload.
func (c *Cluster) ModifyObject(site, object int) {
	c.verMu.Lock()
	defer c.verMu.Unlock()
	c.versions[cache.Key{Site: site, Object: object}]++
}

// etagFor is the strong validator origins attach and edges echo back.
func etagFor(site, object, version int) string {
	return fmt.Sprintf("%q", fmt.Sprintf("/obj/%d/%d@%d", site, object, version))
}

// edge is one CDN node: an HTTP server with a replica set and a cache.
type edge struct {
	id      int
	cluster *Cluster
	srv     *httptest.Server

	mu    sync.Mutex
	cache cache.Cache
	// cachedVer remembers the version of each cached body for the
	// consistency machinery.
	cachedVer map[cache.Key]int
	stats     EdgeStats

	// Registry handles, nil when cfg.Metrics is unset. All are atomic:
	// recording never takes e.mu.
	served              map[string]*obs.Counter // per source
	hits, misses, fails *obs.Counter
}

// EdgeStats counts one edge's serves by source.
type EdgeStats struct {
	Replica, CacheHit, PeerFetch, OriginFetch int64
	// Revalidations counts conditional GETs sent on cache hits
	// (RevalidateOnHit); NotModified counts the 304 replies among them.
	Revalidations, NotModified int64
}

// CacheLookups returns the edge's cache lookups: hits plus the fetches
// that followed misses (replica serves never consult the cache).
func (s EdgeStats) CacheLookups() int64 { return s.CacheHit + s.PeerFetch + s.OriginFetch }

// HitRatio returns the edge's cache hit ratio over its cache lookups;
// an edge that saw no lookups reports 0, not NaN.
func (s EdgeStats) HitRatio() float64 {
	total := s.CacheLookups()
	if total == 0 {
		return 0
	}
	return float64(s.CacheHit) / float64(total)
}

// LocalFraction returns the share of serves satisfied without leaving
// the edge (replica + cache hits); an idle edge reports 0, not NaN.
func (s EdgeStats) LocalFraction() float64 {
	total := s.Replica + s.CacheLookups()
	if total == 0 {
		return 0
	}
	return float64(s.Replica+s.CacheHit) / float64(total)
}

// Start launches the cluster: origins first, then edges. Always Close a
// started cluster.
func Start(sc *scenario.Scenario, p *core.Placement, cfg Config) (*Cluster, error) {
	if p.System() != sc.Sys {
		return nil, fmt.Errorf("httpcdn: placement belongs to a different system")
	}
	if cfg.MaxObjectBytes <= 0 {
		cfg.MaxObjectBytes = 64 << 10
	}
	c := &Cluster{
		sc:       sc,
		cfg:      cfg,
		client:   &http.Client{Timeout: 30 * time.Second},
		versions: make(map[cache.Key]int),
	}
	c.pl.Store(p)
	for j := 0; j < sc.Sys.M(); j++ {
		site := j
		c.origins = append(c.origins, httptest.NewServer(http.HandlerFunc(
			func(w http.ResponseWriter, r *http.Request) {
				c.serveOrigin(site, w, r)
			})))
	}
	if reg := cfg.Metrics; reg != nil {
		c.sourceLatency = make(map[string]*obs.Histogram, len(obs.Sources))
		for _, src := range obs.Sources {
			c.sourceLatency[src] = reg.Histogram("cdn_request_latency_ms",
				"Edge serve latency by source, milliseconds.",
				obs.Labels{"source": src}, obs.DefaultLatencyBuckets())
		}
	}
	for i := 0; i < sc.Sys.N(); i++ {
		e := &edge{id: i, cluster: c, cachedVer: make(map[cache.Key]int)}
		e.cache = c.newEdgeCache(i, p.Free(i))
		if reg := cfg.Metrics; reg != nil {
			edgeLabel := obs.Labels{"edge": strconv.Itoa(i)}
			e.served = make(map[string]*obs.Counter, len(obs.Sources))
			for _, src := range obs.Sources {
				e.served[src] = reg.Counter("cdn_edge_requests_total",
					"Requests served by an edge, by source.",
					obs.Labels{"edge": strconv.Itoa(i), "source": src})
			}
			e.hits = reg.Counter("cdn_edge_cache_hits_total",
				"Cache hits at an edge.", edgeLabel)
			e.misses = reg.Counter("cdn_edge_cache_misses_total",
				"Cache misses at an edge.", edgeLabel)
			e.fails = reg.Counter("cdn_edge_errors_total",
				"Requests an edge failed to serve.", edgeLabel)
		}
		e.srv = httptest.NewServer(http.HandlerFunc(e.serve))
		c.edges = append(c.edges, e)
	}
	return c, nil
}

// newEdgeCache builds edge i's LRU, instrumented with eviction and
// resident-byte hooks when metrics are enabled. The hooks fire under
// the edge mutex (every cache mutation does) and only touch atomics.
func (c *Cluster) newEdgeCache(i int, capacity int64) cache.Cache {
	lru := cache.NewLRU(capacity)
	reg := c.cfg.Metrics
	if reg == nil {
		return lru
	}
	edgeLabel := obs.Labels{"edge": strconv.Itoa(i)}
	evictions := reg.Counter("cdn_edge_cache_evictions_total",
		"Objects evicted from an edge cache.", edgeLabel)
	resident := reg.Gauge("cdn_edge_cache_resident_bytes",
		"Bytes currently resident in an edge cache.", edgeLabel)
	return cache.Instrument(lru, cache.Hooks{
		Evicted:  evictions.Add,
		Resident: resident.Set,
	})
}

// Close shuts down every server.
func (c *Cluster) Close() {
	for _, e := range c.edges {
		e.srv.Close()
	}
	for _, o := range c.origins {
		o.Close()
	}
}

// EdgeURL returns the base URL of edge i.
func (c *Cluster) EdgeURL(i int) string { return c.edges[i].srv.URL }

// Placement returns the placement currently routing requests.
func (c *Cluster) Placement() *core.Placement { return c.pl.Load() }

// SwapPlacement atomically replaces the live placement. In-flight
// requests finish against the snapshot they loaded; a request that
// redirects to a peer whose replica was just dropped falls through to
// the origin via the internal-fetch path, so a swap never loses or
// misroutes a request. After the swap every edge cache is resized to
// the new free space (shrinking evicts LRU-first); a cache may briefly
// exceed the new placement's free space between the pointer store and
// its resize, which only overcommits the model's storage accounting,
// never breaks serving.
//
// The new placement must describe the same deployment: either built on
// the cluster's own System or on one derived from it via WithDemand
// (same shape and capacities).
func (c *Cluster) SwapPlacement(p *core.Placement) error {
	sys := p.System()
	base := c.sc.Sys
	if sys != base {
		if sys.N() != base.N() || sys.M() != base.M() {
			return fmt.Errorf("httpcdn: swap placement of a %dx%d system into a %dx%d cluster",
				sys.N(), sys.M(), base.N(), base.M())
		}
		for i := 0; i < base.N(); i++ {
			if sys.Capacity[i] != base.Capacity[i] {
				return fmt.Errorf("httpcdn: swap placement with different capacity at server %d", i)
			}
		}
	}
	c.pl.Store(p)
	for i, e := range c.edges {
		e.mu.Lock()
		e.cache.Resize(p.Free(i))
		e.mu.Unlock()
	}
	return nil
}

// EdgeStats returns a snapshot of edge i's counters.
func (c *Cluster) EdgeStats(i int) EdgeStats {
	e := c.edges[i]
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// objectPath builds the canonical object URL path.
func objectPath(site, object int) string {
	return fmt.Sprintf("/obj/%d/%d", site, object)
}

// parsePath extracts (site, object) from an object path.
func (c *Cluster) parsePath(path string) (site, object int, err error) {
	parts := strings.Split(strings.TrimPrefix(path, "/"), "/")
	if len(parts) != 3 || parts[0] != "obj" {
		return 0, 0, fmt.Errorf("httpcdn: bad path %q", path)
	}
	site, err = strconv.Atoi(parts[1])
	if err != nil || site < 0 || site >= c.sc.Sys.M() {
		return 0, 0, fmt.Errorf("httpcdn: bad site in %q", path)
	}
	object, err = strconv.Atoi(parts[2])
	if err != nil || object < 1 || object > len(c.sc.Work.Sites[site].Objects) {
		return 0, 0, fmt.Errorf("httpcdn: bad object in %q", path)
	}
	return site, object, nil
}

// objectSize is the demo payload size for an object.
func (c *Cluster) objectSize(site, object int) int64 {
	sz := c.sc.Work.Size(site, object)
	if sz > c.cfg.MaxObjectBytes {
		sz = c.cfg.MaxObjectBytes
	}
	if sz < 1 {
		sz = 1
	}
	return sz
}

// writeBody streams the deterministic payload of the given version for
// (site, object).
func (c *Cluster) writeBody(w http.ResponseWriter, site, object, version int, source string) {
	size := c.objectSize(site, object)
	w.Header().Set("X-Cdn-Source", source)
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	w.Header().Set("Etag", etagFor(site, object, version))
	w.WriteHeader(http.StatusOK)
	writePattern(w, site, object, version, size)
}

// writePattern emits the deterministic byte pattern of an object version.
func writePattern(w io.Writer, site, object, version int, size int64) {
	var chunk [4096]byte
	seed := byte(site*31 + object*7 + version*13)
	for i := range chunk {
		chunk[i] = seed + byte(i)
	}
	for size > 0 {
		n := int64(len(chunk))
		if n > size {
			n = size
		}
		if _, err := w.Write(chunk[:n]); err != nil {
			return
		}
		size -= n
	}
}

// VerifyBody checks that body matches the deterministic pattern of the
// given object version.
func VerifyBody(body []byte, site, object, version int) bool {
	seed := byte(site*31 + object*7 + version*13)
	for i, b := range body {
		if b != seed+byte(i%4096) {
			return false
		}
	}
	return true
}

// versionFromETag parses the version out of an Etag header produced by
// etagFor; it returns 0 for unrecognized tags.
func versionFromETag(etag string) int {
	at := strings.LastIndexByte(etag, '@')
	if at < 0 {
		return 0
	}
	end := at + 1
	for end < len(etag) && etag[end] >= '0' && etag[end] <= '9' {
		end++
	}
	v, err := strconv.Atoi(etag[at+1 : end])
	if err != nil {
		return 0
	}
	return v
}

// serveOrigin handles requests at a site's primary server, including
// conditional GETs: a matching If-None-Match validator earns a 304.
func (c *Cluster) serveOrigin(site int, w http.ResponseWriter, r *http.Request) {
	s, object, err := c.parsePath(r.URL.Path)
	if err != nil || s != site {
		http.NotFound(w, r)
		return
	}
	version := c.version(site, object)
	if inm := r.Header.Get("If-None-Match"); inm != "" && inm == etagFor(site, object, version) {
		w.Header().Set("Etag", etagFor(site, object, version))
		w.WriteHeader(http.StatusNotModified)
		return
	}
	c.writeBody(w, site, object, version, SourceOrigin)
}

// serve handles a request at an edge and records its outcome: source
// counters, per-source latency histogram and one trace event per
// successfully served request.
func (e *edge) serve(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	c := e.cluster
	site, object, err := c.parsePath(r.URL.Path)
	if err != nil {
		http.NotFound(w, r)
		if e.fails != nil {
			e.fails.Inc()
		}
		return
	}
	if tap := c.cfg.RequestTap; tap != nil && r.Header.Get(internalHeader) == "" {
		tap(e.id, site)
	}
	source, hops, ok := e.handle(w, r, site, object)
	if !ok {
		if e.fails != nil {
			e.fails.Inc()
		}
		return
	}
	latencyMs := float64(time.Since(start)) / float64(time.Millisecond)
	if e.served != nil {
		e.served[source].Inc()
		c.sourceLatency[source].Observe(latencyMs)
	}
	if t := c.cfg.Tracer; t != nil {
		t.Emit(obs.Event{
			Req:       t.NextID(),
			Edge:      e.id,
			Site:      site,
			Object:    object,
			Source:    source,
			Hops:      hops,
			LatencyMs: latencyMs,
		})
	}
}

// handle serves one parsed request: replica, then cache, then fetch.
// It reports where the response came from and the redirection hops
// paid; ok = false means an error response was written instead.
func (e *edge) handle(w http.ResponseWriter, r *http.Request, site, object int) (source string, hops float64, ok bool) {
	c := e.cluster
	// One placement snapshot per request: the control plane may swap
	// the live placement at any moment, and routing a single request
	// against two different placements could redirect to a peer chosen
	// by one and accounted by the other.
	pl := c.pl.Load()
	if pl.Has(e.id, site) {
		e.mu.Lock()
		e.stats.Replica++
		e.mu.Unlock()
		// Replicas are kept consistent by the CDN (§5.2: "site
		// replicas are always consistent"): serve the live version.
		c.writeBody(w, site, object, c.version(site, object), SourceReplica)
		return SourceReplica, 0, true
	}

	key := cache.Key{Site: site, Object: object}
	e.mu.Lock()
	hit := e.cache.Get(key)
	ver := e.cachedVer[key]
	if hit {
		e.stats.CacheHit++
	}
	e.mu.Unlock()
	if hit {
		if e.hits != nil {
			e.hits.Inc()
		}
		if c.cfg.RevalidateOnHit {
			fresh, newVer, ok := e.revalidate(r, site, object, ver)
			if ok {
				if fresh {
					c.writeBody(w, site, object, ver, SourceCache)
					return SourceCache, 0, true
				}
				// The origin shipped a newer version; replace the
				// cached copy and serve it.
				e.mu.Lock()
				e.cachedVer[key] = newVer
				e.mu.Unlock()
				c.writeBody(w, site, object, newVer, SourceCache)
				return SourceCache, 0, true
			}
			// Revalidation failed; fall through to a full fetch.
		} else {
			// Weak consistency: serve the cached version as-is,
			// stale or not.
			c.writeBody(w, site, object, ver, SourceCache)
			return SourceCache, 0, true
		}
	} else if e.misses != nil {
		e.misses.Inc()
	}

	// Internal peer fetches that miss fall through to the origin; a
	// client-facing miss redirects to SN (peer or origin).
	internal := r.Header.Get(internalHeader) != ""
	srv, hops := pl.Nearest(e.id, site)
	url := c.origins[site].URL
	source = SourceOrigin
	if !internal && srv != core.Origin {
		url = c.edges[srv].srv.URL
		source = SourcePeer
	}
	if internal {
		hops = c.sc.Sys.CostOrigin[e.id][site]
	}
	if c.cfg.PerHopDelay > 0 {
		time.Sleep(time.Duration(hops * float64(c.cfg.PerHopDelay)))
	}

	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, url+objectPath(site, object), nil)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return source, hops, false
	}
	req.Header.Set(internalHeader, "1")
	resp, err := c.client.Do(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return source, hops, false
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		http.Error(w, "upstream failure", http.StatusBadGateway)
		return source, hops, false
	}

	e.mu.Lock()
	e.cache.Put(key, int64(len(body)))
	if e.cache.Contains(key) {
		e.cachedVer[key] = versionFromETag(resp.Header.Get("Etag"))
	}
	if len(e.cachedVer) > 2*e.cache.Len()+64 {
		for k := range e.cachedVer {
			if !e.cache.Contains(k) {
				delete(e.cachedVer, k)
			}
		}
	}
	if source == SourcePeer {
		e.stats.PeerFetch++
	} else {
		e.stats.OriginFetch++
	}
	e.mu.Unlock()

	w.Header().Set("X-Cdn-Source", source)
	w.Header().Set("Etag", resp.Header.Get("Etag"))
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(body); err != nil {
		return source, hops, true
	}
	return source, hops, true
}

// revalidate sends a conditional GET to the origin for a cached object.
// It returns (fresh, newVersion, ok): fresh means the cached version is
// still current (304); otherwise newVersion is the origin's current
// version. ok=false means the origin could not be reached.
func (e *edge) revalidate(r *http.Request, site, object, cachedVersion int) (fresh bool, newVersion int, ok bool) {
	c := e.cluster
	e.mu.Lock()
	e.stats.Revalidations++
	e.mu.Unlock()
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
		c.origins[site].URL+objectPath(site, object), nil)
	if err != nil {
		return false, 0, false
	}
	req.Header.Set("If-None-Match", etagFor(site, object, cachedVersion))
	resp, err := c.client.Do(req)
	if err != nil {
		return false, 0, false
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		e.mu.Lock()
		e.stats.NotModified++
		e.mu.Unlock()
		return true, cachedVersion, true
	case http.StatusOK:
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return false, 0, false
		}
		return false, versionFromETag(resp.Header.Get("Etag")), true
	default:
		return false, 0, false
	}
}

// FetchResult describes one client fetch through the cluster.
type FetchResult struct {
	Source string
	Bytes  int64
	// Version is the object version the response body carried (parsed
	// from its ETag) — stale serves show an outdated version.
	Version int
	Latency time.Duration
}

// Fetch issues a client request for (site, object) at the given
// first-hop edge and verifies the payload.
func (c *Cluster) Fetch(firstHop, site, object int) (FetchResult, error) {
	start := time.Now()
	resp, err := c.client.Get(c.EdgeURL(firstHop) + objectPath(site, object))
	if err != nil {
		return FetchResult{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return FetchResult{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return FetchResult{}, fmt.Errorf("httpcdn: status %d", resp.StatusCode)
	}
	version := versionFromETag(resp.Header.Get("Etag"))
	if !VerifyBody(body, site, object, version) {
		return FetchResult{}, fmt.Errorf("httpcdn: corrupted payload for %s", objectPath(site, object))
	}
	return FetchResult{
		Source:  resp.Header.Get("X-Cdn-Source"),
		Bytes:   int64(len(body)),
		Version: version,
		Latency: time.Since(start),
	}, nil
}
