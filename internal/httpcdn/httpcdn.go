// Package httpcdn materializes the CDN model as real HTTP servers: one
// origin server per hosted site and one edge server per CDN node, all
// listening on loopback sockets. It exists to show that the library's
// placement decisions drive an actual content delivery network, not only
// the trace-driven simulator:
//
//   - an edge that holds a replica of a site serves its objects
//     directly;
//   - otherwise the edge consults its byte-bounded LRU cache;
//   - on a miss it fetches from the nearest replicator (the placement's
//     SN entry — another edge, or the site's origin) over real HTTP,
//     stores the body, and serves it.
//
// Peer fetches carry an internal header so a peer that no longer holds
// the object falls through to the origin instead of recursing through
// the mesh. Object bodies are deterministic byte patterns checked
// end-to-end by the tests.
//
// The artificial per-hop delay of the paper's latency model (§5.1) can
// be injected to make measured latencies meaningful in the demo binary.
package httpcdn

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// Source values reported in the X-Cdn-Source response header (the
// canonical obs schema values).
const (
	SourceReplica = obs.SourceReplica
	SourceCache   = obs.SourceCache
	SourcePeer    = obs.SourcePeer
	SourceOrigin  = obs.SourceOrigin
)

// InternalHeader marks edge-to-edge fetches to prevent recursion.
const InternalHeader = "X-Cdn-Internal"

// Config controls a cluster.
type Config struct {
	// PerHopDelay is the artificial network delay per topology hop,
	// applied by the fetching edge before contacting a remote source
	// (0 for tests; ~1ms/hop makes the demo's latencies meaningful).
	PerHopDelay time.Duration
	// MaxObjectBytes caps synthetic payload sizes so heavy-tailed
	// catalogs do not ship tens of megabytes through the demo.
	MaxObjectBytes int64
	// RevalidateOnHit enforces strong consistency the way §3.3's
	// server-based invalidation does, but with HTTP's native
	// machinery: every cache hit sends a conditional GET
	// (If-None-Match) to the origin and serves the cached body only
	// on 304 Not Modified. Off = weak consistency (serve cached
	// bodies unconditionally, possibly stale).
	RevalidateOnHit bool
	// Metrics, when non-nil, receives per-edge serve/hit/miss/eviction
	// counters, resident-byte gauges and per-source latency histograms
	// (see DESIGN.md "Observability" for the metric names).
	Metrics *obs.Registry
	// Tracer, when non-nil, receives one JSONL event per edge-served
	// request in the shared obs.Event schema.
	Tracer *obs.Tracer
	// TraceSpans additionally emits obs.Span records to the same Tracer:
	// a root serve span per request with children for the health consult,
	// each failover hop, each upstream attempt and each retry backoff,
	// stitched across servers via the Traceparent header. Ignored when
	// Tracer is nil; off adds nothing to the serving path beyond a nil
	// pointer check.
	TraceSpans bool
	// RequestTap, when non-nil, is invoked once per client-facing
	// request an edge accepts (internal edge-to-edge fetches excluded),
	// before the request is served. The online control plane hangs its
	// demand estimator here; the tap must be safe for concurrent use
	// and fast — it runs on the serving path.
	RequestTap func(edge, site int)
	// Retry bounds every peer/origin fetch: per-attempt timeout plus
	// bounded retries with exponential backoff and jitter. Zero fields
	// take the RetryPolicy defaults.
	Retry RetryPolicy
	// FailThreshold is how many consecutive fetch failures eject a
	// component from redirection (default 3).
	FailThreshold int
	// EjectFor is how long an ejected component sits out before the
	// half-open probe window opens (default 2s).
	EjectFor time.Duration
	// OnHealthChange, when non-nil, fires once per health transition:
	// ejected=true when a component ("edge" or "origin") is ejected,
	// false when a probe readmits it. The control plane hangs its
	// out-of-band reconcile trigger here. Must be safe for concurrent
	// use; it runs on the serving path.
	OnHealthChange func(kind string, id int, ejected bool)
}

// DefaultConfig returns a zero-delay, 64 KiB-capped configuration.
func DefaultConfig() Config {
	return Config{MaxObjectBytes: 64 << 10}
}

// Cluster is a running set of origin and edge HTTP servers.
type Cluster struct {
	sc  *scenario.Scenario
	cfg Config

	// pl is the live placement, swapped atomically by SwapPlacement so
	// the control plane can re-place replicas while requests are in
	// flight. Each request loads the pointer once and routes the whole
	// request against that snapshot.
	pl atomic.Pointer[core.Placement]

	origins []*httptest.Server // one per site
	edges   []*edge            // one per CDN server
	client  *http.Client

	// edgeHealth / originHealth are the passive per-component health
	// trackers; edgeInj / originInj the always-present fault injectors
	// wrapped around each server's handler (pass-through until Set).
	edgeHealth   []*Tracker
	originHealth []*Tracker
	edgeInj      []*fault.Injector
	originInj    []*fault.Injector

	// sourceLatency holds the per-source serve-latency histograms when
	// cfg.Metrics is set.
	sourceLatency map[string]*obs.Histogram

	// versions tracks origin-side object versions for the consistency
	// machinery; bumped by ModifyObject.
	verMu    sync.Mutex
	versions map[cache.Key]int
}

// version returns the current origin-side version of an object.
func (c *Cluster) version(site, object int) int {
	c.verMu.Lock()
	defer c.verMu.Unlock()
	return c.versions[cache.Key{Site: site, Object: object}]
}

// ModifyObject bumps an object's version at its origin, invalidating
// every cached copy (under RevalidateOnHit) and changing its payload.
func (c *Cluster) ModifyObject(site, object int) {
	c.verMu.Lock()
	defer c.verMu.Unlock()
	c.versions[cache.Key{Site: site, Object: object}]++
}

// ETagFor is the strong validator origins attach and edges echo back.
func ETagFor(site, object, version int) string {
	return fmt.Sprintf("%q", fmt.Sprintf("/obj/%d/%d@%d", site, object, version))
}

// edge is one CDN node: an HTTP server with a replica set and a cache.
type edge struct {
	id      int
	cluster *Cluster
	srv     *httptest.Server

	mu    sync.Mutex
	cache cache.Cache
	// cachedVer remembers the version of each cached body for the
	// consistency machinery.
	cachedVer map[cache.Key]int
	stats     EdgeStats

	// Registry handles, nil when cfg.Metrics is unset. All are atomic:
	// recording never takes e.mu.
	served              map[string]*obs.Counter // per source
	hits, misses, fails *obs.Counter
	notFound            *obs.Counter
}

// EdgeStats counts one edge's serves by source.
type EdgeStats struct {
	Replica, CacheHit, PeerFetch, OriginFetch int64
	// Revalidations counts conditional GETs sent on cache hits
	// (RevalidateOnHit); NotModified counts the 304 replies among them.
	Revalidations, NotModified int64
	// NotFound counts requests for paths outside the catalog (stale
	// links to perished sites); they are 404s, not edge failures.
	NotFound int64
}

// CacheLookups returns the edge's cache lookups: hits plus the fetches
// that followed misses (replica serves never consult the cache).
func (s EdgeStats) CacheLookups() int64 { return s.CacheHit + s.PeerFetch + s.OriginFetch }

// HitRatio returns the edge's cache hit ratio over its cache lookups;
// an edge that saw no lookups reports 0, not NaN.
func (s EdgeStats) HitRatio() float64 {
	total := s.CacheLookups()
	if total == 0 {
		return 0
	}
	return float64(s.CacheHit) / float64(total)
}

// LocalFraction returns the share of serves satisfied without leaving
// the edge (replica + cache hits); an idle edge reports 0, not NaN.
func (s EdgeStats) LocalFraction() float64 {
	total := s.Replica + s.CacheLookups()
	if total == 0 {
		return 0
	}
	return float64(s.Replica+s.CacheHit) / float64(total)
}

// Start launches the cluster: origins first, then edges. Always Close a
// started cluster.
func Start(sc *scenario.Scenario, p *core.Placement, cfg Config) (*Cluster, error) {
	if p.System() != sc.Sys {
		return nil, fmt.Errorf("httpcdn: placement belongs to a different system")
	}
	if cfg.MaxObjectBytes <= 0 {
		cfg.MaxObjectBytes = 64 << 10
	}
	cfg.Retry = cfg.Retry.WithDefaults()
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.EjectFor <= 0 {
		cfg.EjectFor = 2 * time.Second
	}
	c := &Cluster{
		sc:       sc,
		cfg:      cfg,
		client:   &http.Client{Timeout: 30 * time.Second},
		versions: make(map[cache.Key]int),
	}
	c.pl.Store(p)
	for j := 0; j < sc.Sys.M(); j++ {
		site := j
		t := &Tracker{}
		inj := fault.NewInjector()
		if reg := cfg.Metrics; reg != nil {
			l := obs.Labels{"kind": "origin", "id": strconv.Itoa(j)}
			t.ejectCtr = reg.Counter("cdn_health_ejections_total",
				"Components ejected by the passive health tracker.", l)
			t.readmitCtr = reg.Counter("cdn_health_readmissions_total",
				"Ejected components readmitted after a successful probe.", l)
			reg.GaugeFunc("cdn_health_ejected",
				"1 while the component is ejected from redirection.", l,
				func() float64 {
					if t.IsEjected() {
						return 1
					}
					return 0
				})
		}
		c.originHealth = append(c.originHealth, t)
		c.originInj = append(c.originInj, inj)
		c.origins = append(c.origins, httptest.NewServer(inj.Wrap(http.HandlerFunc(
			func(w http.ResponseWriter, r *http.Request) {
				c.serveOrigin(site, w, r)
			}))))
	}
	if reg := cfg.Metrics; reg != nil {
		c.sourceLatency = make(map[string]*obs.Histogram, len(obs.Sources))
		for _, src := range obs.Sources {
			c.sourceLatency[src] = reg.Histogram("cdn_request_latency_ms",
				"Edge serve latency by source, milliseconds.",
				obs.Labels{"source": src}, obs.DefaultLatencyBuckets())
		}
	}
	for i := 0; i < sc.Sys.N(); i++ {
		e := &edge{id: i, cluster: c, cachedVer: make(map[cache.Key]int)}
		e.cache = c.newEdgeCache(i, p.Free(i))
		if reg := cfg.Metrics; reg != nil {
			edgeLabel := obs.Labels{"edge": strconv.Itoa(i)}
			e.served = make(map[string]*obs.Counter, len(obs.Sources))
			for _, src := range obs.Sources {
				e.served[src] = reg.Counter("cdn_edge_requests_total",
					"Requests served by an edge, by source.",
					obs.Labels{"edge": strconv.Itoa(i), "source": src})
			}
			e.hits = reg.Counter("cdn_edge_cache_hits_total",
				"Cache hits at an edge.", edgeLabel)
			e.misses = reg.Counter("cdn_edge_cache_misses_total",
				"Cache misses at an edge.", edgeLabel)
			e.fails = reg.Counter("cdn_edge_errors_total",
				"Requests an edge failed to serve.", edgeLabel)
			e.notFound = reg.Counter("cdn_edge_notfound_total",
				"Requests for sites or objects outside the catalog (404s).", edgeLabel)
		}
		t := &Tracker{}
		if reg := cfg.Metrics; reg != nil {
			l := obs.Labels{"kind": "edge", "id": strconv.Itoa(i)}
			t.ejectCtr = reg.Counter("cdn_health_ejections_total",
				"Components ejected by the passive health tracker.", l)
			t.readmitCtr = reg.Counter("cdn_health_readmissions_total",
				"Ejected components readmitted after a successful probe.", l)
			reg.GaugeFunc("cdn_health_ejected",
				"1 while the component is ejected from redirection.", l,
				func() float64 {
					if t.IsEjected() {
						return 1
					}
					return 0
				})
		}
		c.edgeHealth = append(c.edgeHealth, t)
		inj := fault.NewInjector()
		c.edgeInj = append(c.edgeInj, inj)
		e.srv = httptest.NewServer(inj.Wrap(http.HandlerFunc(e.serve)))
		c.edges = append(c.edges, e)
	}
	return c, nil
}

// EdgeInjector returns edge i's fault injector (pass-through until Set):
// the chaos-testing hook that kills, slows or blackholes a live edge.
func (c *Cluster) EdgeInjector(i int) *fault.Injector { return c.edgeInj[i] }

// OriginInjector returns site j's origin fault injector.
func (c *Cluster) OriginInjector(j int) *fault.Injector { return c.originInj[j] }

// newEdgeCache builds edge i's LRU, instrumented with eviction and
// resident-byte hooks when metrics are enabled. The hooks fire under
// the edge mutex (every cache mutation does) and only touch atomics.
func (c *Cluster) newEdgeCache(i int, capacity int64) cache.Cache {
	lru := cache.NewLRU(capacity)
	reg := c.cfg.Metrics
	if reg == nil {
		return lru
	}
	edgeLabel := obs.Labels{"edge": strconv.Itoa(i)}
	evictions := reg.Counter("cdn_edge_cache_evictions_total",
		"Objects evicted from an edge cache.", edgeLabel)
	resident := reg.Gauge("cdn_edge_cache_resident_bytes",
		"Bytes currently resident in an edge cache.", edgeLabel)
	return cache.Instrument(lru, cache.Hooks{
		Evicted:  evictions.Add,
		Resident: resident.Set,
	})
}

// Close shuts down every server.
func (c *Cluster) Close() {
	for _, e := range c.edges {
		e.srv.Close()
	}
	for _, o := range c.origins {
		o.Close()
	}
}

// EdgeURL returns the base URL of edge i.
func (c *Cluster) EdgeURL(i int) string { return c.edges[i].srv.URL }

// Placement returns the placement currently routing requests.
func (c *Cluster) Placement() *core.Placement { return c.pl.Load() }

// SwapPlacement atomically replaces the live placement. In-flight
// requests finish against the snapshot they loaded; a request that
// redirects to a peer whose replica was just dropped falls through to
// the origin via the internal-fetch path, so a swap never loses or
// misroutes a request. After the swap every edge cache is resized to
// the new free space (shrinking evicts LRU-first); a cache may briefly
// exceed the new placement's free space between the pointer store and
// its resize, which only overcommits the model's storage accounting,
// never breaks serving.
//
// The new placement must describe the same deployment: either built on
// the cluster's own System or on one derived from it via WithDemand
// (same shape and capacities).
func (c *Cluster) SwapPlacement(p *core.Placement) error {
	sys := p.System()
	base := c.sc.Sys
	if sys != base {
		if sys.N() != base.N() || sys.M() != base.M() {
			return fmt.Errorf("httpcdn: swap placement of a %dx%d system into a %dx%d cluster",
				sys.N(), sys.M(), base.N(), base.M())
		}
		for i := 0; i < base.N(); i++ {
			if sys.Capacity[i] != base.Capacity[i] {
				return fmt.Errorf("httpcdn: swap placement with different capacity at server %d", i)
			}
		}
	}
	c.pl.Store(p)
	for i, e := range c.edges {
		e.mu.Lock()
		e.cache.Resize(p.Free(i))
		e.mu.Unlock()
	}
	return nil
}

// EdgeStats returns a snapshot of edge i's counters.
func (c *Cluster) EdgeStats(i int) EdgeStats {
	e := c.edges[i]
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// ObjectPath builds the canonical object URL path.
func ObjectPath(site, object int) string {
	return fmt.Sprintf("/obj/%d/%d", site, object)
}

// parsePath extracts (site, object) from an object path.
func (c *Cluster) parsePath(path string) (site, object int, err error) {
	parts := strings.Split(strings.TrimPrefix(path, "/"), "/")
	if len(parts) != 3 || parts[0] != "obj" {
		return 0, 0, fmt.Errorf("httpcdn: bad path %q", path)
	}
	site, err = strconv.Atoi(parts[1])
	if err != nil || site < 0 || site >= c.sc.Sys.M() {
		return 0, 0, fmt.Errorf("httpcdn: bad site in %q", path)
	}
	object, err = strconv.Atoi(parts[2])
	if err != nil || object < 1 || object > len(c.sc.Work.Sites[site].Objects) {
		return 0, 0, fmt.Errorf("httpcdn: bad object in %q", path)
	}
	return site, object, nil
}

// objectSize is the demo payload size for an object.
func (c *Cluster) objectSize(site, object int) int64 {
	sz := c.sc.Work.Size(site, object)
	if sz > c.cfg.MaxObjectBytes {
		sz = c.cfg.MaxObjectBytes
	}
	if sz < 1 {
		sz = 1
	}
	return sz
}

// writeBody streams the deterministic payload of the given version for
// (site, object).
func (c *Cluster) writeBody(w http.ResponseWriter, site, object, version int, source string) {
	size := c.objectSize(site, object)
	w.Header().Set("X-Cdn-Source", source)
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	w.Header().Set("Etag", ETagFor(site, object, version))
	w.WriteHeader(http.StatusOK)
	WritePattern(w, site, object, version, size)
}

// WritePattern emits the deterministic byte pattern of an object version.
func WritePattern(w io.Writer, site, object, version int, size int64) {
	var chunk [4096]byte
	seed := byte(site*31 + object*7 + version*13)
	for i := range chunk {
		chunk[i] = seed + byte(i)
	}
	for size > 0 {
		n := int64(len(chunk))
		if n > size {
			n = size
		}
		if _, err := w.Write(chunk[:n]); err != nil {
			return
		}
		size -= n
	}
}

// VerifyBody checks that body matches the deterministic pattern of the
// given object version.
func VerifyBody(body []byte, site, object, version int) bool {
	seed := byte(site*31 + object*7 + version*13)
	for i, b := range body {
		if b != seed+byte(i%4096) {
			return false
		}
	}
	return true
}

// VersionFromETag parses the version out of an Etag header produced by
// etagFor; it returns 0 for unrecognized tags.
func VersionFromETag(etag string) int {
	at := strings.LastIndexByte(etag, '@')
	if at < 0 {
		return 0
	}
	end := at + 1
	for end < len(etag) && etag[end] >= '0' && etag[end] <= '9' {
		end++
	}
	v, err := strconv.Atoi(etag[at+1 : end])
	if err != nil {
		return 0
	}
	return v
}

// serveOrigin handles requests at a site's primary server, including
// conditional GETs: a matching If-None-Match validator earns a 304.
func (c *Cluster) serveOrigin(site int, w http.ResponseWriter, r *http.Request) {
	s, object, err := c.parsePath(r.URL.Path)
	if err != nil || s != site {
		http.NotFound(w, r)
		return
	}
	// An incoming Traceparent stitches the origin's work into the
	// caller's trace (the parent is the edge's upstream-attempt span).
	var sp *Span
	if trace, parent, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); ok {
		sp = c.startSpan(obs.SpanOrigin, trace, parent, site, site, object)
	}
	defer sp.End()
	version := c.version(site, object)
	if inm := r.Header.Get("If-None-Match"); inm != "" && inm == ETagFor(site, object, version) {
		sp.Attr("status", "304")
		w.Header().Set("Etag", ETagFor(site, object, version))
		w.WriteHeader(http.StatusNotModified)
		return
	}
	sp.Attr("status", "200")
	c.writeBody(w, site, object, version, SourceOrigin)
}

// serve handles a request at an edge and records its outcome: source
// counters, per-source latency histogram and one trace event per
// successfully served request.
func (e *edge) serve(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	c := e.cluster
	site, object, err := c.parsePath(r.URL.Path)
	if err != nil {
		// Out-of-catalog path: a client-side 404 (stale link, perished
		// site), not an edge failure.
		http.NotFound(w, r)
		e.mu.Lock()
		e.stats.NotFound++
		e.mu.Unlock()
		if e.notFound != nil {
			e.notFound.Inc()
		}
		return
	}
	if tap := c.cfg.RequestTap; tap != nil && r.Header.Get(InternalHeader) == "" {
		tap(e.id, site)
	}
	// Root span for this edge's work. An internal edge-to-edge fetch
	// carries the calling edge's Traceparent, making this serve span a
	// child of its upstream-attempt span — one trace per client request
	// across the whole mesh.
	trace, parent, _ := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
	sp := c.startSpan(obs.SpanServe, trace, parent, e.id, site, object)
	source, hops, ok := e.handle(w, r, site, object, sp)
	if !ok {
		sp.Attr("outcome", "error")
		sp.End()
		if e.fails != nil {
			e.fails.Inc()
		}
		return
	}
	sp.Attr("source", source)
	sp.AttrFloat("hops", hops)
	sp.Attr("outcome", "ok")
	sp.End()
	latencyMs := float64(time.Since(start)) / float64(time.Millisecond)
	if e.served != nil {
		e.served[source].Inc()
		c.sourceLatency[source].Observe(latencyMs)
	}
	if t := c.cfg.Tracer; t != nil {
		t.Emit(obs.Event{
			Req:       t.NextID(),
			Edge:      e.id,
			Site:      site,
			Object:    object,
			Source:    source,
			Hops:      hops,
			LatencyMs: latencyMs,
		})
	}
}

// handle serves one parsed request: replica, then cache, then fetch.
// It reports where the response came from and the redirection hops
// paid; ok = false means an error response was written instead.
func (e *edge) handle(w http.ResponseWriter, r *http.Request, site, object int, sp *Span) (source string, hops float64, ok bool) {
	c := e.cluster
	// One placement snapshot per request: the control plane may swap
	// the live placement at any moment, and routing a single request
	// against two different placements could redirect to a peer chosen
	// by one and accounted by the other.
	pl := c.pl.Load()
	if pl.Has(e.id, site) {
		e.mu.Lock()
		e.stats.Replica++
		e.mu.Unlock()
		// Replicas are kept consistent by the CDN (§5.2: "site
		// replicas are always consistent"): serve the live version.
		c.writeBody(w, site, object, c.version(site, object), SourceReplica)
		return SourceReplica, 0, true
	}

	key := cache.Key{Site: site, Object: object}
	e.mu.Lock()
	hit := e.cache.Get(key)
	ver := e.cachedVer[key]
	if hit {
		e.stats.CacheHit++
	}
	e.mu.Unlock()
	if hit {
		if e.hits != nil {
			e.hits.Inc()
		}
		if c.cfg.RevalidateOnHit {
			fresh, newVer, ok := e.revalidate(r, site, object, ver, sp)
			if ok {
				if fresh {
					c.writeBody(w, site, object, ver, SourceCache)
					return SourceCache, 0, true
				}
				// The origin shipped a newer version; replace the
				// cached copy and serve it.
				e.mu.Lock()
				e.cachedVer[key] = newVer
				e.mu.Unlock()
				c.writeBody(w, site, object, newVer, SourceCache)
				return SourceCache, 0, true
			}
			// Revalidation failed; fall through to a full fetch.
		} else {
			// Weak consistency: serve the cached version as-is,
			// stale or not.
			c.writeBody(w, site, object, ver, SourceCache)
			return SourceCache, 0, true
		}
	} else if e.misses != nil {
		e.misses.Inc()
	}

	// Internal peer fetches that miss fall through to the origin; a
	// client-facing miss redirects to SN, preferring healthy sources:
	// ejected peers are skipped at selection time, and when the chosen
	// source fails anyway (after its retries) the fetch fails over to
	// the next candidate instead of surfacing the error.
	internal := r.Header.Get(InternalHeader) != ""
	hsp := sp.Child(obs.SpanHealth)
	candidates, skipped := c.upstreams(pl, e.id, site, internal)
	hsp.AttrInt("candidates", len(candidates))
	hsp.AttrInt("skipped_ejected", skipped)
	hsp.End()
	var body []byte
	var etag string
	var ferr error
	var used upstream
	for hop, u := range candidates {
		fsp := sp.Child(obs.SpanFailover)
		fsp.AttrInt("hop", hop)
		fsp.AttrTarget(u.kind, u.id)
		fsp.AttrFloat("cost_hops", u.hops)
		if c.cfg.PerHopDelay > 0 {
			time.Sleep(time.Duration(u.hops * float64(c.cfg.PerHopDelay)))
		}
		body, etag, ferr = c.fetchWithRetry(r.Context(), u, ObjectPath(site, object), fsp)
		fsp.AttrOutcome(ferr)
		fsp.End()
		if ferr == nil {
			used = u
			break
		}
	}
	if ferr != nil {
		status := http.StatusBadGateway
		if errors.Is(ferr, ErrEdgeTimeout) {
			status = http.StatusGatewayTimeout
		}
		w.Header().Set(ErrorHeader, ErrorClass(ferr))
		http.Error(w, ferr.Error(), status)
		return source, hops, false
	}
	source, hops = SourceOrigin, used.hops
	if used.kind == "edge" {
		source = SourcePeer
	}

	e.mu.Lock()
	e.cache.Put(key, int64(len(body)))
	if e.cache.Contains(key) {
		e.cachedVer[key] = VersionFromETag(etag)
	}
	if len(e.cachedVer) > 2*e.cache.Len()+64 {
		for k := range e.cachedVer {
			if !e.cache.Contains(k) {
				delete(e.cachedVer, k)
			}
		}
	}
	if source == SourcePeer {
		e.stats.PeerFetch++
	} else {
		e.stats.OriginFetch++
	}
	e.mu.Unlock()

	w.Header().Set("X-Cdn-Source", source)
	w.Header().Set("Etag", etag)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(body); err != nil {
		return source, hops, true
	}
	return source, hops, true
}

// upstream is one candidate source for a miss fetch.
type upstream struct {
	kind string // "edge" or "origin"
	id   int
	url  string
	hops float64
}

// trackerFor maps an upstream to its health tracker.
func (c *Cluster) trackerFor(u upstream) *Tracker {
	if u.kind == "edge" {
		return c.edgeHealth[u.id]
	}
	return c.originHealth[u.id]
}

// upstreams orders the candidate sources for a miss fetch. Internal
// fetches go straight to the origin (recursion prevention, unchanged).
// Client-facing fetches consider the cheapest replica-holding peer that
// the health tracker offers and the origin, nearest-first — the same SN
// choice as Placement.Nearest, minus dead components. The origin is
// kept as last resort even while ejected: gating the only remaining
// source turns a slow failure into a guaranteed one, and the attempt
// doubles as its health probe. skipped counts the replica-holding peers
// the health tracker excluded (the health span's evidence).
func (c *Cluster) upstreams(pl *core.Placement, from, site int, internal bool) (ups []upstream, skipped int) {
	orig := upstream{kind: "origin", id: site, url: c.origins[site].URL,
		hops: c.sc.Sys.CostOrigin[from][site]}
	if internal {
		return []upstream{orig}, 0
	}
	now := time.Now()
	best, bestCost := -1, math.Inf(1)
	for k := 0; k < c.sc.Sys.N(); k++ {
		if k == from || !pl.Has(k, site) {
			continue
		}
		if !c.edgeHealth[k].Candidate(now) {
			skipped++
			continue
		}
		if cost := c.sc.Sys.CostServer[from][k]; cost < bestCost {
			best, bestCost = k, cost
		}
	}
	if best < 0 {
		return []upstream{orig}, skipped
	}
	peer := upstream{kind: "edge", id: best, url: c.edges[best].srv.URL, hops: bestCost}
	if orig.hops < peer.hops && c.originHealth[site].Candidate(now) {
		return []upstream{orig, peer}, skipped
	}
	return []upstream{peer, orig}, skipped
}

// fetchWithRetry GETs path from u under the retry policy: per-attempt
// timeouts, bounded attempts, exponential backoff with jitter between
// them. The overall outcome — success, or failure after the last
// attempt — is fed to u's health tracker; an ejected upstream is only
// contacted under its half-open probe token.
func (c *Cluster) fetchWithRetry(ctx context.Context, u upstream, path string, sp *Span) (body []byte, etag string, err error) {
	t := c.trackerFor(u)
	if !t.AcquireProbe(time.Now()) {
		sp.Attr("gated", "ejected")
		down := error(ErrOriginDown)
		if u.kind == "edge" {
			down = ErrPeerDown
		}
		return nil, "", fmt.Errorf("%w: %s %d is ejected", down, u.kind, u.id)
	}
	p := c.cfg.Retry
	for attempt := 1; ; attempt++ {
		usp := sp.Child(obs.SpanUpstream)
		usp.AttrInt("attempt", attempt)
		usp.AttrTarget(u.kind, u.id)
		body, etag, err = c.fetchOnce(ctx, u.url+path, usp)
		usp.AttrOutcome(err)
		usp.End()
		if err == nil || attempt >= p.Attempts || ctx.Err() != nil {
			break
		}
		rsp := sp.Child(obs.SpanRetry)
		rsp.AttrInt("after_attempt", attempt)
		select {
		case <-time.After(p.Backoff(attempt)):
		case <-ctx.Done():
		}
		rsp.End()
	}
	if err != nil && !errors.Is(err, ErrEdgeTimeout) && !errors.Is(err, ErrUpstreamStatus) {
		down := error(ErrOriginDown)
		if u.kind == "edge" {
			down = ErrPeerDown
		}
		err = fmt.Errorf("%w: %v", down, err)
	}
	c.observe(t, u.kind, u.id, err)
	return body, etag, err
}

// fetchOnce performs one upstream attempt under the per-attempt timeout.
// sp (the attempt's upstream span) is propagated via the Traceparent
// header so the remote server's spans nest under this attempt.
func (c *Cluster) fetchOnce(ctx context.Context, url string, sp *Span) ([]byte, string, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.Retry.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, url, nil)
	if err != nil {
		return nil, "", err
	}
	req.Header.Set(InternalHeader, "1")
	if hdr := sp.Header(); hdr != "" {
		req.Header.Set(obs.TraceparentHeader, hdr)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		if actx.Err() != nil {
			return nil, "", fmt.Errorf("%w: %v", ErrEdgeTimeout, err)
		}
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		if actx.Err() != nil {
			return nil, "", fmt.Errorf("%w: %v", ErrEdgeTimeout, err)
		}
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("%w: %d", ErrUpstreamStatus, resp.StatusCode)
	}
	return body, resp.Header.Get("Etag"), nil
}

// revalidate sends a conditional GET to the origin for a cached object.
// It returns (fresh, newVersion, ok): fresh means the cached version is
// still current (304); otherwise newVersion is the origin's current
// version. ok=false means the origin could not be reached.
func (e *edge) revalidate(r *http.Request, site, object, cachedVersion int, sp *Span) (fresh bool, newVersion int, ok bool) {
	c := e.cluster
	e.mu.Lock()
	e.stats.Revalidations++
	e.mu.Unlock()
	usp := sp.Child(obs.SpanUpstream)
	usp.Attr("revalidate", "1")
	usp.AttrTarget("origin", site)
	defer usp.End()
	// A revalidation round-trip runs under the same per-attempt timeout
	// as a fetch, so a hung origin cannot stall cache hits forever.
	rctx, cancel := context.WithTimeout(r.Context(), c.cfg.Retry.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet,
		c.origins[site].URL+ObjectPath(site, object), nil)
	if err != nil {
		return false, 0, false
	}
	req.Header.Set("If-None-Match", ETagFor(site, object, cachedVersion))
	if hdr := usp.Header(); hdr != "" {
		req.Header.Set(obs.TraceparentHeader, hdr)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		usp.Attr("outcome", "error:unreachable")
		return false, 0, false
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		e.mu.Lock()
		e.stats.NotModified++
		e.mu.Unlock()
		usp.Attr("outcome", "304")
		return true, cachedVersion, true
	case http.StatusOK:
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			usp.Attr("outcome", "error:body")
			return false, 0, false
		}
		usp.Attr("outcome", "200")
		return false, VersionFromETag(resp.Header.Get("Etag")), true
	default:
		usp.Attr("outcome", "error:status")
		return false, 0, false
	}
}

// FetchResult describes one client fetch through the cluster.
type FetchResult struct {
	Source string
	Bytes  int64
	// Version is the object version the response body carried (parsed
	// from its ETag) — stale serves show an outdated version.
	Version int
	Latency time.Duration
}

// Fetch issues a client request for (site, object) at the given
// first-hop edge and verifies the payload. Failures come wrapped in the
// package's sentinel errors (errors.Is): ErrEdgeTimeout when ctx ran
// out, ErrEdgeDown when the edge was unreachable, ErrOriginDown /
// ErrPeerDown / ErrUpstreamStatus when the edge reported an upstream
// failure class, ErrBadStatus for other non-200 answers and
// ErrCorruptPayload for wrong bytes. Outcomes that implicate the edge
// itself (unreachable, unclassified errors, corruption) feed its
// health tracker, so client traffic alone is enough to surface a dead
// edge in Health / EjectedEdges.
func (c *Cluster) Fetch(ctx context.Context, firstHop, site, object int) (FetchResult, error) {
	start := time.Now()
	health := c.edgeHealth[firstHop]
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.EdgeURL(firstHop)+ObjectPath(site, object), nil)
	if err != nil {
		return FetchResult{}, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			err = fmt.Errorf("%w: %v", ErrEdgeTimeout, err)
		} else {
			err = fmt.Errorf("%w: %v", ErrEdgeDown, err)
		}
		c.observe(health, "edge", firstHop, err)
		return FetchResult{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		err = fmt.Errorf("%w: %v", ErrEdgeDown, err)
		c.observe(health, "edge", firstHop, err)
		return FetchResult{}, err
	}
	if resp.StatusCode != http.StatusOK {
		if sentinel := ClassError(resp.Header.Get(ErrorHeader)); sentinel != nil {
			// The edge is alive and reported an upstream failure; that
			// is not evidence against the edge itself.
			return FetchResult{}, fmt.Errorf("%w: status %d", sentinel, resp.StatusCode)
		}
		err = fmt.Errorf("%w: %d", ErrBadStatus, resp.StatusCode)
		c.observe(health, "edge", firstHop, err)
		return FetchResult{}, err
	}
	version := VersionFromETag(resp.Header.Get("Etag"))
	if !VerifyBody(body, site, object, version) {
		err = fmt.Errorf("%w: %s", ErrCorruptPayload, ObjectPath(site, object))
		c.observe(health, "edge", firstHop, err)
		return FetchResult{}, err
	}
	c.observe(health, "edge", firstHop, nil)
	return FetchResult{
		Source:  resp.Header.Get("X-Cdn-Source"),
		Bytes:   int64(len(body)),
		Version: version,
		Latency: time.Since(start),
	}, nil
}
