package httpcdn

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/placement"
	"repro/internal/scenario"
	"repro/internal/topology"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// swapScenario is a small cluster with two genuinely different
// placements to flip between.
func swapScenario(t *testing.T) (*scenario.Scenario, *placement.Result, *placement.Result) {
	t.Helper()
	w := workload.DefaultConfig()
	w.Servers = 4
	w.LowSites, w.MediumSites, w.HighSites = 1, 2, 1
	w.ObjectsPerSite = 40
	sc, err := scenario.Build(scenario.Config{
		Topology: topology.Config{
			TransitDomains:        1,
			TransitNodesPerDomain: 2,
			StubsPerTransitNode:   2,
			StubNodesPerStub:      3,
			ExtraEdgeProb:         0.3,
		},
		Workload:     w,
		CapacityFrac: 0.3,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
		Specs:          sc.Work.Specs(),
		AvgObjectBytes: sc.Work.AvgObjectBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The alternate placement is pure caching (no replicas): maximally
	// different routing from the hybrid result.
	none := placement.None(sc.Sys)
	if hybrid.Placement.Replicas() == 0 {
		t.Fatal("hybrid placed no replicas; swap test needs two distinct placements")
	}
	return sc, hybrid, none
}

// TestConcurrentPlacementSwap hammers the cluster with client fetches
// while another goroutine keeps swapping the live placement between two
// replica sets. Run under -race (make race / CI does): every fetch must
// succeed with a verified body — no lost or misrouted requests — and
// the request tap must see exactly one event per client request.
func TestConcurrentPlacementSwap(t *testing.T) {
	sc, hybrid, alt := swapScenario(t)

	var taps atomic.Int64
	cfg := DefaultConfig()
	cfg.RequestTap = func(edge, site int) {
		if edge < 0 || edge >= sc.Sys.N() || site < 0 || site >= sc.Sys.M() {
			t.Errorf("tap out of range: edge %d site %d", edge, site)
		}
		taps.Add(1)
	}
	cl, err := Start(sc, hybrid.Placement, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const (
		clients    = 4
		perClient  = 120
		totalSwaps = 300
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Swapper: flip hybrid <-> alt as fast as it can.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for s := 0; s < totalSwaps; s++ {
			select {
			case <-stop:
				return
			default:
			}
			p := hybrid.Placement
			if s%2 == 1 {
				p = alt.Placement
			}
			if err := cl.SwapPlacement(p); err != nil {
				t.Errorf("swap %d: %v", s, err)
				return
			}
		}
	}()

	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stream := sc.Stream(xrand.New(uint64(1000 + g)))
			for k := 0; k < perClient; k++ {
				req := stream.Next()
				fr, err := cl.Fetch(context.Background(), req.Server, req.Site, req.Object)
				if err != nil {
					errs <- err
					return
				}
				if fr.Bytes <= 0 {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	close(errs)
	for err := range errs {
		t.Fatalf("fetch during swap: %v", err)
	}
	if got, want := taps.Load(), int64(clients*perClient); got != want {
		t.Fatalf("request tap saw %d events, want %d", got, want)
	}

	// The cluster must end on whichever placement was stored last and
	// with caches sized to it.
	final := cl.Placement()
	if final != hybrid.Placement && final != alt.Placement {
		t.Fatal("final placement is neither of the swapped ones")
	}
}

// TestSwapPlacementRejectsForeignSystem pins the deployment check.
func TestSwapPlacementRejectsForeignSystem(t *testing.T) {
	sc, hybrid, _ := swapScenario(t)
	cl, err := Start(sc, hybrid.Placement, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	other := *sc.Sys
	other.Capacity = append([]int64(nil), sc.Sys.Capacity...)
	other.Capacity[0]++
	if err := cl.SwapPlacement(placement.GreedyGlobal(&other).Placement); err == nil {
		t.Fatal("swap accepted a placement with different capacities")
	}

	// A placement on a demand-derived system is explicitly allowed.
	derived, err := sc.Sys.WithDemand(sc.Sys.Demand)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.SwapPlacement(placement.GreedyGlobal(derived).Placement); err != nil {
		t.Fatalf("swap rejected a WithDemand-derived placement: %v", err)
	}
}
