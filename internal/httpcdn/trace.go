package httpcdn

import (
	"strconv"
	"time"

	"repro/internal/obs"
)

// span is the cluster-side handle for one obs.Span under construction.
// Every method is nil-safe and the constructors return nil when span
// tracing is disabled, so the serving path carries unconditional span
// calls at the cost of a pointer check — no allocation, no formatting —
// when tracing is off.
type span struct {
	t     *obs.Tracer
	start time.Time
	s     obs.Span
}

// startSpan opens a span. An empty trace starts a new trace; a non-empty
// (trace, parent) pair — typically parsed from an incoming Traceparent
// header — attaches the span to the caller's trace so multi-hop requests
// stitch into one tree.
func (c *Cluster) startSpan(kind, trace, parent string, component, site, object int) *span {
	if !c.cfg.TraceSpans || c.cfg.Tracer == nil {
		return nil
	}
	if trace == "" {
		trace = obs.NewTraceID()
	}
	now := time.Now()
	return &span{
		t:     c.cfg.Tracer,
		start: now,
		s: obs.Span{
			Trace: trace, Span: obs.NewSpanID(), Parent: parent,
			Kind: kind, Edge: component, Site: site, Object: object,
			StartUs: now.UnixMicro(),
		},
	}
}

// child opens a sub-span of sp with the same trace and request identity.
func (sp *span) child(kind string) *span {
	if sp == nil {
		return nil
	}
	now := time.Now()
	return &span{
		t:     sp.t,
		start: now,
		s: obs.Span{
			Trace: sp.s.Trace, Span: obs.NewSpanID(), Parent: sp.s.Span,
			Kind: kind, Edge: sp.s.Edge, Site: sp.s.Site, Object: sp.s.Object,
			StartUs: now.UnixMicro(),
		},
	}
}

// attr records one key/value pair on the span.
func (sp *span) attr(key, value string) {
	if sp == nil {
		return
	}
	if sp.s.Attrs == nil {
		sp.s.Attrs = make(map[string]string, 4)
	}
	sp.s.Attrs[key] = value
}

// attrInt records an integer attribute; the formatting happens after the
// nil check so disabled tracing pays nothing.
func (sp *span) attrInt(key string, value int) {
	if sp == nil {
		return
	}
	sp.attr(key, strconv.Itoa(value))
}

// attrTarget records the "kind:id" of an upstream component.
func (sp *span) attrTarget(kind string, id int) {
	if sp == nil {
		return
	}
	sp.attr("target", kind+":"+strconv.Itoa(id))
}

// attrFloat records a float attribute with short formatting.
func (sp *span) attrFloat(key string, value float64) {
	if sp == nil {
		return
	}
	sp.attr(key, strconv.FormatFloat(value, 'g', -1, 64))
}

// attrOutcome records "ok" or the error's wire class.
func (sp *span) attrOutcome(err error) {
	if sp == nil {
		return
	}
	if err == nil {
		sp.attr("outcome", "ok")
	} else {
		sp.attr("outcome", "error:"+errorClass(err))
	}
}

// header renders the Traceparent value linking downstream work to sp.
func (sp *span) header() string {
	if sp == nil {
		return ""
	}
	return obs.Traceparent(sp.s.Trace, sp.s.Span)
}

// end stamps the duration and emits the span.
func (sp *span) end() {
	if sp == nil {
		return
	}
	sp.s.DurUs = int64(time.Since(sp.start) / time.Microsecond)
	sp.t.EmitSpan(sp.s)
}
