package httpcdn

import (
	"strconv"
	"time"

	"repro/internal/obs"
)

// Span is the serving-side handle for one obs.Span under construction.
// Every method is nil-safe and the constructors return nil when span
// tracing is disabled, so the serving path carries unconditional span
// calls at the cost of a pointer check — no allocation, no formatting —
// when tracing is off. It is exported so the standalone cluster
// binaries (internal/clusterd) emit the same span schema as the
// in-process Cluster.
type Span struct {
	t     *obs.Tracer
	start time.Time
	s     obs.Span
}

// startSpan opens a span. An empty trace starts a new trace; a non-empty
// (trace, parent) pair — typically parsed from an incoming Traceparent
// header — attaches the span to the caller's trace so multi-hop requests
// stitch into one tree.
func (c *Cluster) startSpan(kind, trace, parent string, component, site, object int) *Span {
	if !c.cfg.TraceSpans || c.cfg.Tracer == nil {
		return nil
	}
	return NewSpan(c.cfg.Tracer, kind, trace, parent, component, site, object)
}

// NewSpan opens a span on tracer t. A nil tracer returns a nil span (and
// every Span method on nil is a no-op), so callers thread one
// unconditional span pipeline whether tracing is on or off. An empty
// trace starts a new trace; a non-empty (trace, parent) pair — typically
// parsed from an incoming Traceparent header — attaches the span to the
// caller's trace so multi-hop requests stitch into one tree.
func NewSpan(t *obs.Tracer, kind, trace, parent string, component, site, object int) *Span {
	if t == nil {
		return nil
	}
	if trace == "" {
		trace = obs.NewTraceID()
	}
	now := time.Now()
	return &Span{
		t:     t,
		start: now,
		s: obs.Span{
			Trace: trace, Span: obs.NewSpanID(), Parent: parent,
			Kind: kind, Edge: component, Site: site, Object: object,
			StartUs: now.UnixMicro(),
		},
	}
}

// Child opens a sub-span of sp with the same trace and request identity.
func (sp *Span) Child(kind string) *Span {
	if sp == nil {
		return nil
	}
	now := time.Now()
	return &Span{
		t:     sp.t,
		start: now,
		s: obs.Span{
			Trace: sp.s.Trace, Span: obs.NewSpanID(), Parent: sp.s.Span,
			Kind: kind, Edge: sp.s.Edge, Site: sp.s.Site, Object: sp.s.Object,
			StartUs: now.UnixMicro(),
		},
	}
}

// Attr records one key/value pair on the span.
func (sp *Span) Attr(key, value string) {
	if sp == nil {
		return
	}
	if sp.s.Attrs == nil {
		sp.s.Attrs = make(map[string]string, 4)
	}
	sp.s.Attrs[key] = value
}

// AttrInt records an integer attribute; the formatting happens after the
// nil check so disabled tracing pays nothing.
func (sp *Span) AttrInt(key string, value int) {
	if sp == nil {
		return
	}
	sp.Attr(key, strconv.Itoa(value))
}

// AttrTarget records the "kind:id" of an upstream component.
func (sp *Span) AttrTarget(kind string, id int) {
	if sp == nil {
		return
	}
	sp.Attr("target", kind+":"+strconv.Itoa(id))
}

// AttrFloat records a float attribute with short formatting.
func (sp *Span) AttrFloat(key string, value float64) {
	if sp == nil {
		return
	}
	sp.Attr(key, strconv.FormatFloat(value, 'g', -1, 64))
}

// AttrOutcome records "ok" or the error's wire class.
func (sp *Span) AttrOutcome(err error) {
	if sp == nil {
		return
	}
	if err == nil {
		sp.Attr("outcome", "ok")
	} else {
		sp.Attr("outcome", "error:"+ErrorClass(err))
	}
}

// Header renders the Traceparent value linking downstream work to sp.
func (sp *Span) Header() string {
	if sp == nil {
		return ""
	}
	return obs.Traceparent(sp.s.Trace, sp.s.Span)
}

// End stamps the duration and emits the span.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.s.DurUs = int64(time.Since(sp.start) / time.Microsecond)
	sp.t.EmitSpan(sp.s)
}
