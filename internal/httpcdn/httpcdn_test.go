package httpcdn

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/scenario"
	"repro/internal/topology"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func smallScenario(t *testing.T) *scenario.Scenario {
	t.Helper()
	w := workload.DefaultConfig()
	w.Servers = 4
	w.LowSites, w.MediumSites, w.HighSites = 2, 2, 2
	w.ObjectsPerSite = 40
	return scenario.MustBuild(scenario.Config{
		Topology: topology.Config{
			TransitDomains:        1,
			TransitNodesPerDomain: 2,
			StubsPerTransitNode:   2,
			StubNodesPerStub:      3,
			ExtraEdgeProb:         0.3,
		},
		Workload:     w,
		CapacityFrac: 0.25,
		Seed:         1,
	})
}

func startHybridCluster(t *testing.T) (*scenario.Scenario, *core.Placement, *Cluster) {
	t.Helper()
	sc := smallScenario(t)
	res, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
		Specs:          sc.Work.Specs(),
		AvgObjectBytes: sc.Work.AvgObjectBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Start(sc, res.Placement, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return sc, res.Placement, cl
}

func TestReplicaServedLocally(t *testing.T) {
	sc, p, cl := startHybridCluster(t)
	// Find a replicated (edge, site) pair; fall back to creating one.
	edge, site := -1, -1
	for i := 0; i < sc.Sys.N() && edge < 0; i++ {
		for j := 0; j < sc.Sys.M(); j++ {
			if p.Has(i, j) {
				edge, site = i, j
				break
			}
		}
	}
	if edge < 0 {
		t.Skip("no replicas placed in this configuration")
	}
	res, err := cl.Fetch(context.Background(), edge, site, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceReplica {
		t.Fatalf("source %q, want replica", res.Source)
	}
	if got := cl.EdgeStats(edge).Replica; got != 1 {
		t.Fatalf("replica counter %d", got)
	}
}

func TestMissThenCacheHit(t *testing.T) {
	sc, p, cl := startHybridCluster(t)
	// Find a non-replicated pair.
	edge, site := -1, -1
	for i := 0; i < sc.Sys.N() && edge < 0; i++ {
		for j := 0; j < sc.Sys.M(); j++ {
			if !p.Has(i, j) {
				edge, site = i, j
				break
			}
		}
	}
	if edge < 0 {
		t.Fatal("everything replicated?")
	}
	first, err := cl.Fetch(context.Background(), edge, site, 3)
	if err != nil {
		t.Fatal(err)
	}
	if first.Source != SourcePeer && first.Source != SourceOrigin {
		t.Fatalf("first fetch source %q", first.Source)
	}
	second, err := cl.Fetch(context.Background(), edge, site, 3)
	if err != nil {
		t.Fatal(err)
	}
	if second.Source != SourceCache {
		t.Fatalf("second fetch source %q, want cache", second.Source)
	}
	if first.Bytes != second.Bytes {
		t.Fatalf("byte counts differ: %d vs %d", first.Bytes, second.Bytes)
	}
	_ = sc
}

func TestPayloadDeterministic(t *testing.T) {
	sc, _, cl := startHybridCluster(t)
	// Fetch the same object via two different edges; the bodies (sizes
	// capped) must be identical byte patterns.
	a, err := cl.Fetch(context.Background(), 0, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cl.Fetch(context.Background(), sc.Sys.N()-1, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Bytes != b.Bytes {
		t.Fatalf("sizes differ: %d vs %d", a.Bytes, b.Bytes)
	}
}

func TestVerifyBody(t *testing.T) {
	var buf bytes.Buffer
	WritePattern(&buf, 2, 7, 0, 10000)
	if !VerifyBody(buf.Bytes(), 2, 7, 0) {
		t.Fatal("pattern does not verify")
	}
	corrupted := append([]byte(nil), buf.Bytes()...)
	corrupted[5000] ^= 0xff
	if VerifyBody(corrupted, 2, 7, 0) {
		t.Fatal("corruption not detected")
	}
	if VerifyBody(buf.Bytes(), 3, 7, 0) {
		t.Fatal("wrong object verified")
	}
	if VerifyBody(buf.Bytes(), 2, 7, 1) {
		t.Fatal("wrong version verified")
	}
}

func TestVersionFromETag(t *testing.T) {
	if got := VersionFromETag(ETagFor(3, 9, 42)); got != 42 {
		t.Fatalf("parsed version %d, want 42", got)
	}
	if got := VersionFromETag(`"no-version-here"`); got != 0 {
		t.Fatalf("garbage etag parsed to %d", got)
	}
	if got := VersionFromETag(""); got != 0 {
		t.Fatalf("empty etag parsed to %d", got)
	}
}

func TestConsistencyOverHTTP(t *testing.T) {
	sc := smallScenario(t)
	p := core.NewPlacement(sc.Sys) // no replicas: everything cacheable

	run := func(revalidate bool) (stale bool, stats EdgeStats) {
		cfg := DefaultConfig()
		cfg.RevalidateOnHit = revalidate
		cl, err := Start(sc, p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()

		const edge, site, object = 0, 0, 2
		// Prime the cache.
		first, err := cl.Fetch(context.Background(), edge, site, object)
		if err != nil {
			t.Fatal(err)
		}
		if first.Version != 0 {
			t.Fatalf("fresh object at version %d", first.Version)
		}
		// Second fetch must hit the cache.
		second, err := cl.Fetch(context.Background(), edge, site, object)
		if err != nil {
			t.Fatal(err)
		}
		if second.Source != SourceCache {
			t.Fatalf("second fetch source %q", second.Source)
		}
		// Modify at the origin, fetch again.
		cl.ModifyObject(site, object)
		third, err := cl.Fetch(context.Background(), edge, site, object)
		if err != nil {
			t.Fatal(err)
		}
		return third.Version == 0, cl.EdgeStats(edge)
	}

	// Weak consistency serves the stale version 0.
	stale, weakStats := run(false)
	if !stale {
		t.Error("weak consistency unexpectedly served the fresh version")
	}
	if weakStats.Revalidations != 0 {
		t.Error("weak mode revalidated")
	}

	// Strong consistency revalidates and serves version 1.
	stale, strongStats := run(true)
	if stale {
		t.Error("strong consistency served a stale version")
	}
	if strongStats.Revalidations == 0 {
		t.Error("strong mode never revalidated")
	}
	if strongStats.NotModified == 0 {
		t.Error("no 304 replies despite an unmodified second fetch")
	}
}

func TestBadPaths(t *testing.T) {
	_, _, cl := startHybridCluster(t)
	paths := []string{"/", "/obj", "/obj/0", "/obj/99/1", "/obj/0/0", "/obj/0/9999", "/obj/x/y"}
	for _, path := range paths {
		resp, err := cl.client.Get(cl.EdgeURL(0) + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == 200 {
			t.Errorf("path %q served OK", path)
		}
	}
	// Out-of-catalog paths are 404s, not edge failures: they must land
	// in the dedicated NotFound stat and leave the serve attribution
	// untouched.
	st := cl.EdgeStats(0)
	if st.NotFound != int64(len(paths)) {
		t.Errorf("EdgeStats.NotFound = %d, want %d", st.NotFound, len(paths))
	}
	if got := st.Replica + st.CacheHit + st.PeerFetch + st.OriginFetch; got != 0 {
		t.Errorf("bad paths leaked into serve attribution: %+v", st)
	}
}

func TestConcurrentFetches(t *testing.T) {
	sc, _, cl := startHybridCluster(t)
	stream := sc.Stream(xrand.New(5))
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		reqs := make([]workload.Request, 50)
		for i := range reqs {
			reqs[i] = stream.Next()
		}
		wg.Add(1)
		go func(reqs []workload.Request) {
			defer wg.Done()
			for _, r := range reqs {
				if _, err := cl.Fetch(context.Background(), r.Server, r.Site, r.Object); err != nil {
					errs <- err
					return
				}
			}
		}(reqs)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestLoadRunHitRatio(t *testing.T) {
	sc, _, cl := startHybridCluster(t)
	stream := sc.Stream(xrand.New(9))
	sources := map[string]int{}
	for i := 0; i < 600; i++ {
		req := stream.Next()
		res, err := cl.Fetch(context.Background(), req.Server, req.Site, req.Object)
		if err != nil {
			t.Fatal(err)
		}
		sources[res.Source]++
	}
	if sources[SourceCache] == 0 {
		t.Error("no cache hits over 600 requests")
	}
	if sources[SourceCache]+sources[SourceReplica]+sources[SourcePeer]+sources[SourceOrigin] != 600 {
		t.Errorf("source accounting wrong: %v", sources)
	}
}

func TestStartRejectsForeignPlacement(t *testing.T) {
	a := smallScenario(t)
	b := scenario.MustBuild(scenario.Config{
		Topology:     a.Cfg.Topology,
		Workload:     a.Cfg.Workload,
		CapacityFrac: a.Cfg.CapacityFrac,
		Seed:         2,
	})
	if _, err := Start(a, core.NewPlacement(b.Sys), DefaultConfig()); err == nil {
		t.Fatal("foreign placement accepted")
	}
}
