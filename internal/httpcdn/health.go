package httpcdn

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
)

// RetryPolicy bounds one upstream fetch: per-attempt timeout, attempt
// count, and exponential backoff with jitter between attempts. The zero
// value means "use the defaults" (3 attempts, 2 s per attempt, 25 ms
// base backoff doubling to a 500 ms cap, ±20 % jitter).
type RetryPolicy struct {
	// Attempts is the maximum number of tries per upstream (≥ 1).
	Attempts int
	// Timeout is the per-attempt deadline. A blackholed peer costs at
	// most Attempts×Timeout instead of hanging the serving path on the
	// client's whole-request timeout.
	Timeout time.Duration
	// BaseBackoff is the sleep before the second attempt; it doubles per
	// attempt up to MaxBackoff.
	BaseBackoff, MaxBackoff time.Duration
	// Jitter is the ± fraction applied to each backoff so synchronized
	// retries from many edges don't stampede a recovering component.
	Jitter float64
}

// WithDefaults fills unset fields.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 3
	}
	if p.Timeout <= 0 {
		p.Timeout = 2 * time.Second
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 25 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 500 * time.Millisecond
	}
	if p.Jitter <= 0 {
		p.Jitter = 0.2
	}
	return p
}

// Backoff is the sleep before attempt number attempt (1-based count of
// failures so far): BaseBackoff·2^(attempt-1) capped at MaxBackoff,
// jittered ±Jitter. Jitter is the one intentionally nondeterministic
// number in the package — it desynchronizes real retries and never
// affects results, only timing.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	d := p.BaseBackoff << (attempt - 1)
	if d > p.MaxBackoff || d <= 0 {
		d = p.MaxBackoff
	}
	j := 1 + p.Jitter*(2*rand.Float64()-1)
	return time.Duration(float64(d) * j)
}

// Tracker is the passive health state of one upstream component. It is
// driven entirely by fetch outcomes — no active pinger — through the
// classic consecutive-failure ejection / half-open probe state machine:
//
//	healthy --(FailThreshold consecutive failures)--> ejected
//	ejected --(EjectFor elapsed)--> half-open: exactly one probe passes
//	probe success --> healthy (readmitted); probe failure --> ejected again
type Tracker struct {
	mu      sync.Mutex
	fails   int
	ejected bool
	probing bool
	until   time.Time

	ejections, readmissions int64

	// Registry handles, nil when metrics are off.
	ejectCtr, readmitCtr *obs.Counter
}

// Instrument attaches ejection/readmission counters to the tracker
// (internal/clusterd wires its standalone components here; the
// in-process Cluster sets the fields directly at Start).
func (t *Tracker) Instrument(ejections, readmissions *obs.Counter) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ejectCtr, t.readmitCtr = ejections, readmissions
}

// Candidate reports whether the component may be offered traffic now:
// healthy, or ejected with the half-open window open and no probe in
// flight. It consumes nothing — selection may consider a component and
// then not fetch from it.
func (t *Tracker) Candidate(now time.Time) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return !t.ejected || (!t.probing && !now.Before(t.until))
}

// AcquireProbe gates the actual fetch: healthy components always pass;
// an ejected one passes exactly once per half-open window (the probe),
// and concurrent fetches see false until that probe's outcome lands.
func (t *Tracker) AcquireProbe(now time.Time) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.ejected {
		return true
	}
	if t.probing || now.Before(t.until) {
		return false
	}
	t.probing = true
	return true
}

// Success records a successful fetch, readmitting an ejected component.
func (t *Tracker) Success() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.fails = 0
	if t.ejected {
		t.ejected, t.probing = false, false
		t.readmissions++
		if t.readmitCtr != nil {
			t.readmitCtr.Inc()
		}
	}
}

// Failure records a failed fetch; it ejects after threshold consecutive
// failures and re-ejects on a failed half-open probe. It reports whether
// this call flipped the component from healthy to ejected.
func (t *Tracker) Failure(threshold int, ejectFor time.Duration, now time.Time) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.fails++
	if t.ejected {
		// A failed probe (or a straggling in-flight fetch): push the
		// next probe window out, stay ejected.
		t.until = now.Add(ejectFor)
		t.probing = false
		return false
	}
	if t.fails < threshold {
		return false
	}
	t.ejected = true
	t.until = now.Add(ejectFor)
	t.ejections++
	if t.ejectCtr != nil {
		t.ejectCtr.Inc()
	}
	return true
}

// Snapshot renders the state for HealthReport.
func (t *Tracker) Snapshot(kind string, id int, now time.Time) HealthStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := HealthStatus{
		Kind:                kind,
		ID:                  id,
		State:               "healthy",
		ConsecutiveFailures: t.fails,
		Ejections:           t.ejections,
		Readmissions:        t.readmissions,
	}
	if t.ejected {
		s.State = "ejected"
		if t.probing || !now.Before(t.until) {
			s.State = "probing"
		} else {
			s.RetryInMs = t.until.Sub(now).Milliseconds()
		}
	}
	return s
}

// IsEjected reports the raw ejected flag (half-open still counts as
// ejected until a probe succeeds) — the view the control plane uses to
// exclude a server from placement.
func (t *Tracker) IsEjected() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ejected
}

// HealthStatus is one component's externally visible health.
type HealthStatus struct {
	Kind                string `json:"kind"` // "edge" or "origin"
	ID                  int    `json:"id"`
	State               string `json:"state"` // healthy | ejected | probing
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Ejections           int64  `json:"ejections"`
	Readmissions        int64  `json:"readmissions"`
	// RetryInMs is how long until the next half-open probe (ejected
	// components only).
	RetryInMs int64 `json:"retry_in_ms,omitempty"`
}

// HealthReport is the /debug/health payload.
type HealthReport struct {
	Edges   []HealthStatus `json:"edges"`
	Origins []HealthStatus `json:"origins"`
}

// Health snapshots every component's health state.
func (c *Cluster) Health() HealthReport {
	now := time.Now()
	var rep HealthReport
	for i, t := range c.edgeHealth {
		rep.Edges = append(rep.Edges, t.Snapshot("edge", i, now))
	}
	for j, t := range c.originHealth {
		rep.Origins = append(rep.Origins, t.Snapshot("origin", j, now))
	}
	return rep
}

// EjectedEdges lists the edges currently ejected by the health tracker,
// ascending. It satisfies the control plane's HealthView, so a
// controller wired to the cluster excludes dead edges from re-placement
// without httpcdn importing the control package (or vice versa).
func (c *Cluster) EjectedEdges() []int {
	var out []int
	for i, t := range c.edgeHealth {
		if t.IsEjected() {
			out = append(out, i)
		}
	}
	return out
}

// HealthHandler serves the health report as JSON — mount it at
// /debug/health next to the metrics and control endpoints.
func (c *Cluster) HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(c.Health())
	})
}

// observe feeds one fetch outcome into a component's tracker and fires
// the health-change hook on state transitions.
func (c *Cluster) observe(t *Tracker, kind string, id int, err error) {
	if err == nil {
		wasEjected := t.IsEjected()
		t.Success()
		if wasEjected && c.cfg.OnHealthChange != nil {
			c.cfg.OnHealthChange(kind, id, false)
		}
		return
	}
	if t.Failure(c.cfg.FailThreshold, c.cfg.EjectFor, time.Now()) {
		if c.cfg.OnHealthChange != nil {
			c.cfg.OnHealthChange(kind, id, true)
		}
	}
}
