package httpcdn

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/fault"
)

func TestTrackerStateMachine(t *testing.T) {
	tr := &Tracker{}
	now := time.Now()
	const threshold = 3
	const ejectFor = 50 * time.Millisecond

	if !tr.Candidate(now) || !tr.AcquireProbe(now) {
		t.Fatal("fresh tracker not available")
	}
	// Failures below the threshold keep it healthy.
	for i := 0; i < threshold-1; i++ {
		if tr.Failure(threshold, ejectFor, now) {
			t.Fatal("ejected before threshold")
		}
	}
	if !tr.Candidate(now) {
		t.Fatal("sub-threshold failures ejected the component")
	}
	// A success resets the streak.
	tr.Success()
	for i := 0; i < threshold-1; i++ {
		tr.Failure(threshold, ejectFor, now)
	}
	if tr.IsEjected() {
		t.Fatal("streak not reset by success")
	}
	// The threshold-th consecutive failure flips it.
	if !tr.Failure(threshold, ejectFor, now) {
		t.Fatal("threshold failure did not report the flip")
	}
	if !tr.IsEjected() || tr.Candidate(now) {
		t.Fatal("ejected component still offered traffic")
	}
	if tr.AcquireProbe(now) {
		t.Fatal("probe granted before the eject window elapsed")
	}

	// Half-open: after EjectFor, exactly one probe passes.
	later := now.Add(ejectFor)
	if !tr.Candidate(later) {
		t.Fatal("half-open component not offered as candidate")
	}
	if !tr.AcquireProbe(later) {
		t.Fatal("first probe denied")
	}
	if tr.AcquireProbe(later) {
		t.Fatal("second concurrent probe granted")
	}
	if tr.Candidate(later) {
		t.Fatal("candidate while a probe is in flight")
	}
	// Failed probe: re-ejected, window extended.
	tr.Failure(threshold, ejectFor, later)
	if tr.AcquireProbe(later.Add(ejectFor / 2)) {
		t.Fatal("probe granted inside the extended window")
	}
	// Successful probe after the next window readmits.
	again := later.Add(2 * ejectFor)
	if !tr.AcquireProbe(again) {
		t.Fatal("second-window probe denied")
	}
	tr.Success()
	if tr.IsEjected() || !tr.Candidate(again) {
		t.Fatal("successful probe did not readmit")
	}
	if tr.ejections != 1 || tr.readmissions != 1 {
		t.Fatalf("counters: %d ejections, %d readmissions", tr.ejections, tr.readmissions)
	}

	s := tr.Snapshot("edge", 0, again)
	if s.State != "healthy" || s.Ejections != 1 || s.Readmissions != 1 {
		t.Fatalf("snapshot %+v", s)
	}
}

func TestFetchTypedErrors(t *testing.T) {
	// A cluster whose edge 0 errors: the client sees ErrBadStatus (the
	// 503 comes from the injector, before the edge handler classifies
	// anything) and the edge's tracker absorbs the blame.
	_, _, cl := startHybridCluster(t)
	cl.EdgeInjector(0).Set(fault.ModeError, 0)
	_, err := cl.Fetch(context.Background(), 0, 0, 1)
	if !errors.Is(err, ErrBadStatus) {
		t.Fatalf("injected 503 returned %v, want ErrBadStatus", err)
	}

	// A cancelled client context surfaces as ErrEdgeTimeout.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = cl.Fetch(ctx, 1, 0, 1)
	if !errors.Is(err, ErrEdgeTimeout) {
		t.Fatalf("cancelled fetch returned %v, want ErrEdgeTimeout", err)
	}

	// A dead edge (closed server) surfaces as ErrEdgeDown.
	cl.edges[2].srv.Close()
	_, err = cl.Fetch(context.Background(), 2, 0, 1)
	if !errors.Is(err, ErrEdgeDown) {
		t.Fatalf("dead edge returned %v, want ErrEdgeDown", err)
	}
}

func TestOriginDownClassPropagates(t *testing.T) {
	sc, p, _ := startHybridCluster(t)

	// A fast retry policy so the test doesn't sit in backoff.
	cfg := DefaultConfig()
	cfg.Retry = RetryPolicy{Attempts: 2, Timeout: 200 * time.Millisecond,
		BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond, Jitter: 0.1}
	cl, err := Start(sc, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	// Pick a (edge, site) pair with no replica anywhere, so the only
	// source is the origin; then kill the origin.
	edge, site := -1, -1
	for j := 0; j < sc.Sys.M() && edge < 0; j++ {
		anyReplica := false
		for i := 0; i < sc.Sys.N(); i++ {
			if p.Has(i, j) {
				anyReplica = true
				break
			}
		}
		if !anyReplica {
			edge, site = 0, j
		}
	}
	if edge < 0 {
		t.Skip("every site replicated in this configuration")
	}
	cl.OriginInjector(site).Set(fault.ModeError, 0)
	_, err = cl.Fetch(context.Background(), edge, site, 1)
	if !errors.Is(err, ErrUpstreamStatus) {
		t.Fatalf("dead origin returned %v, want ErrUpstreamStatus", err)
	}
	// The first-hop edge must NOT be blamed for its upstream's failure.
	if got := cl.edgeHealth[edge].fails; got != 0 {
		t.Fatalf("edge blamed for origin failure: %d fails", got)
	}
	// The origin tracker took the blame.
	if cl.originHealth[site].fails == 0 {
		t.Fatal("origin failure not recorded")
	}
}

func TestRedirectionSkipsEjectedPeer(t *testing.T) {
	sc, p, cl := startHybridCluster(t)

	// Find a site with a replica on some peer k and a client edge i != k.
	from, peer, site := -1, -1, -1
	for j := 0; j < sc.Sys.M() && from < 0; j++ {
		for k := 0; k < sc.Sys.N(); k++ {
			if p.Has(k, j) {
				for i := 0; i < sc.Sys.N(); i++ {
					if i != k && !p.Has(i, j) {
						from, peer, site = i, k, j
						break
					}
				}
				break
			}
		}
	}
	if from < 0 {
		t.Skip("no peer-replica pair in this configuration")
	}

	ups, _ := cl.upstreams(cl.pl.Load(), from, site, false)
	hasPeer := false
	for _, u := range ups {
		if u.kind == "edge" {
			hasPeer = true
		}
	}
	if !hasPeer {
		t.Skip("origin nearer than any peer for this pair")
	}

	// Eject the peer far into the future: selection must drop it.
	h := cl.edgeHealth[peer]
	h.mu.Lock()
	h.ejected = true
	h.until = time.Now().Add(time.Hour)
	h.mu.Unlock()

	ups, skipped := cl.upstreams(cl.pl.Load(), from, site, false)
	for _, u := range ups {
		if u.kind == "edge" && u.id == peer {
			t.Fatal("ejected peer still offered by upstreams")
		}
	}
	if skipped == 0 {
		t.Fatal("upstreams did not count the ejected peer as skipped")
	}
	// The fetch still succeeds through the remaining candidates.
	if _, err := cl.Fetch(context.Background(), from, site, 1); err != nil {
		t.Fatalf("fetch with ejected peer failed: %v", err)
	}
}

func TestHealthHandlerAndEjectedEdges(t *testing.T) {
	_, _, cl := startHybridCluster(t)
	if got := cl.EjectedEdges(); len(got) != 0 {
		t.Fatalf("healthy cluster reports ejected edges %v", got)
	}
	h := cl.edgeHealth[1]
	h.mu.Lock()
	h.ejected = true
	h.until = time.Now().Add(time.Hour)
	h.ejections = 2
	h.mu.Unlock()

	if got := cl.EjectedEdges(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("EjectedEdges = %v, want [1]", got)
	}

	rr := httptest.NewRecorder()
	cl.HealthHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/health", nil))
	if rr.Code != 200 {
		t.Fatalf("health handler status %d", rr.Code)
	}
	var rep HealthReport
	if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Edges) != len(cl.edges) || len(rep.Origins) != len(cl.origins) {
		t.Fatalf("report sizes: %d edges, %d origins", len(rep.Edges), len(rep.Origins))
	}
	if rep.Edges[1].State == "healthy" || rep.Edges[1].Ejections != 2 {
		t.Fatalf("edge 1 report %+v", rep.Edges[1])
	}

	rr = httptest.NewRecorder()
	cl.HealthHandler().ServeHTTP(rr, httptest.NewRequest("POST", "/debug/health", nil))
	if rr.Code != 405 {
		t.Fatalf("POST to health handler: %d", rr.Code)
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{}.WithDefaults()
	if p.Attempts != 3 || p.Timeout != 2*time.Second {
		t.Fatalf("defaults %+v", p)
	}
	for attempt := 1; attempt < 10; attempt++ {
		d := p.Backoff(attempt)
		lo := time.Duration(float64(p.MaxBackoff) * (1 + p.Jitter))
		if d <= 0 || d > lo {
			t.Fatalf("backoff(%d) = %v out of range", attempt, d)
		}
	}
}

func TestBlackholedPeerBoundedByTimeout(t *testing.T) {
	sc, p, _ := startHybridCluster(t)
	cfg := DefaultConfig()
	cfg.Retry = RetryPolicy{Attempts: 1, Timeout: 100 * time.Millisecond,
		BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond, Jitter: 0.1}
	cl, err := Start(sc, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	// Blackhole every origin: a miss with no replica anywhere must fail
	// within the per-attempt timeout instead of hanging forever.
	edge, site := -1, -1
	for j := 0; j < sc.Sys.M() && edge < 0; j++ {
		any := false
		for i := 0; i < sc.Sys.N(); i++ {
			if p.Has(i, j) {
				any = true
			}
		}
		if !any {
			edge, site = 0, j
		}
	}
	if edge < 0 {
		t.Skip("every site replicated")
	}
	cl.OriginInjector(site).Set(fault.ModeBlackhole, 0)
	start := time.Now()
	_, err = cl.Fetch(context.Background(), edge, site, 1)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrEdgeTimeout) {
		t.Fatalf("blackholed origin returned %v, want ErrEdgeTimeout", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("blackholed fetch took %v — per-hop timeout not enforced", elapsed)
	}
}
