package httpcdn

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/obs"
	"repro/internal/placement"
)

// startTracedCluster builds a cluster with span tracing on, returning
// the trace buffer.
func startTracedCluster(t *testing.T) (*Cluster, *obs.Tracer, *bytes.Buffer) {
	t.Helper()
	sc := smallScenario(t)
	res, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
		Specs:          sc.Work.Specs(),
		AvgObjectBytes: sc.Work.AvgObjectBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	cfg := DefaultConfig()
	cfg.Tracer = tr
	cfg.TraceSpans = true
	cl, err := Start(sc, res.Placement, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl, tr, &buf
}

// missPair finds (edge, site) where the edge holds no replica, so a
// first fetch must go upstream.
func missPair(t *testing.T, cl *Cluster) (edge, site int) {
	t.Helper()
	p := cl.Placement()
	for i := 0; i < cl.sc.Sys.N(); i++ {
		for j := 0; j < cl.sc.Sys.M(); j++ {
			if !p.Has(i, j) {
				return i, j
			}
		}
	}
	t.Skip("every edge replicates every site in this configuration")
	return 0, 0
}

func TestServeSpansStitchAcrossHops(t *testing.T) {
	cl, tr, buf := startTracedCluster(t)
	edge, site := missPair(t, cl)
	if _, err := cl.Fetch(context.Background(), edge, site, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	_, spans, err := obs.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("no spans emitted")
	}
	for _, s := range spans {
		if err := obs.ValidateSpan(s); err != nil {
			t.Fatalf("invalid span: %v", err)
		}
	}

	// All spans of a miss fetch belong to one trace.
	trace := spans[0].Trace
	byID := make(map[string]obs.Span, len(spans))
	kinds := make(map[string]int)
	for _, s := range spans {
		if s.Trace != trace {
			t.Fatalf("span %s in trace %s, want %s (one client request = one trace)",
				s.Span, s.Trace, trace)
		}
		byID[s.Span] = s
		kinds[s.Kind]++
	}
	if kinds[obs.SpanServe] == 0 || kinds[obs.SpanHealth] == 0 ||
		kinds[obs.SpanFailover] == 0 || kinds[obs.SpanUpstream] == 0 {
		t.Fatalf("span kinds %v, want at least serve+health+failover+upstream", kinds)
	}

	// Exactly one root; every other span's parent must resolve — that is
	// the multi-hop stitch (the upstream server's spans arrive with a
	// Traceparent-derived parent from the calling edge).
	roots, stitched := 0, false
	for _, s := range spans {
		if s.Parent == "" {
			roots++
			if s.Kind != obs.SpanServe {
				t.Fatalf("root span has kind %q, want serve", s.Kind)
			}
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Fatalf("span %s (%s) has unknown parent %s", s.Span, s.Kind, s.Parent)
		}
		// A serve/origin span whose parent is an upstream attempt was
		// recorded by a *different* component than its parent: the hop
		// crossed a real HTTP boundary.
		if (s.Kind == obs.SpanServe || s.Kind == obs.SpanOrigin) && p.Kind == obs.SpanUpstream {
			stitched = true
		}
	}
	if roots != 1 {
		t.Fatalf("%d root spans, want exactly 1", roots)
	}
	if !stitched {
		t.Fatal("no remote span stitched under an upstream attempt")
	}
}

func TestSpansOffEmitsOnlyEvents(t *testing.T) {
	sc := smallScenario(t)
	res, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
		Specs:          sc.Work.Specs(),
		AvgObjectBytes: sc.Work.AvgObjectBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cfg := DefaultConfig()
	cfg.Tracer = obs.NewTracer(&buf)
	cl, err := Start(sc, res.Placement, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Fetch(context.Background(), 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Tracer.Flush(); err != nil {
		t.Fatal(err)
	}
	events, spans, err := obs.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || len(spans) != 0 {
		t.Fatalf("got %d events, %d spans; want 1 event and no spans with TraceSpans off",
			len(events), len(spans))
	}
}
