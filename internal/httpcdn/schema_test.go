package httpcdn

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
)

// TestHealthHandlerSchema pins the /debug/health wire schema (key sets,
// not values) the same way the control package pins /debug/control —
// dashboards and cdnctl read these field names.
func TestHealthHandlerSchema(t *testing.T) {
	_, _, cl := startHybridCluster(t)
	srv := httptest.NewServer(cl.HealthHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/health = %d", resp.StatusCode)
	}
	var page map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	assertKeys(t, "/debug/health", page, []string{"edges", "origins"}, nil)

	for _, section := range []string{"edges", "origins"} {
		var comps []map[string]json.RawMessage
		if err := json.Unmarshal(page[section], &comps); err != nil {
			t.Fatal(err)
		}
		if len(comps) == 0 {
			t.Fatalf("/debug/health %s empty", section)
		}
		assertKeys(t, "/debug/health "+section+" entry", comps[0],
			[]string{"kind", "id", "state", "consecutive_failures", "ejections", "readmissions"},
			[]string{"retry_in_ms"})
	}
}

func assertKeys(t *testing.T, what string, obj map[string]json.RawMessage, required, optional []string) {
	t.Helper()
	allowed := map[string]bool{}
	for _, k := range required {
		if _, ok := obj[k]; !ok {
			t.Errorf("%s: required key %q missing", what, k)
		}
		allowed[k] = true
	}
	for _, k := range optional {
		allowed[k] = true
	}
	var extra []string
	for k := range obj {
		if !allowed[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	if len(extra) > 0 {
		t.Errorf("%s: unexpected keys %v — extend the golden schema test if this is deliberate", what, extra)
	}
}
