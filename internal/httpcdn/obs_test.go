package httpcdn

import (
	"bytes"
	"context"
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/xrand"
)

// TestEdgeStatsRatiosGuarded is the NaN-guard regression test for the
// HTTP layer: an idle edge must report 0 ratios, not NaN.
func TestEdgeStatsRatiosGuarded(t *testing.T) {
	var s EdgeStats
	if r := s.HitRatio(); r != 0 || math.IsNaN(r) {
		t.Errorf("idle HitRatio = %v, want 0", r)
	}
	if f := s.LocalFraction(); f != 0 || math.IsNaN(f) {
		t.Errorf("idle LocalFraction = %v, want 0", f)
	}
	s = EdgeStats{Replica: 6, CacheHit: 3, PeerFetch: 2, OriginFetch: 1}
	if r := s.HitRatio(); math.Abs(r-0.5) > 1e-12 {
		t.Errorf("HitRatio = %v, want 0.5", r)
	}
	if f := s.LocalFraction(); math.Abs(f-0.75) > 1e-12 {
		t.Errorf("LocalFraction = %v, want 0.75", f)
	}
}

// TestClusterMetricsAndTrace drives real HTTP traffic through an
// instrumented cluster and checks that the registry and the JSONL
// tracer were populated with consistent values.
func TestClusterMetricsAndTrace(t *testing.T) {
	sc := smallScenario(t)
	res, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
		Specs:          sc.Work.Specs(),
		AvgObjectBytes: sc.Work.AvgObjectBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	var traceBuf bytes.Buffer
	cfg := DefaultConfig()
	cfg.Metrics = reg
	cfg.Tracer = obs.NewTracer(&traceBuf)
	cl, err := Start(sc, res.Placement, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const requests = 300
	stream := sc.Stream(xrand.New(42))
	for k := 0; k < requests; k++ {
		req := stream.Next()
		if _, err := cl.Fetch(context.Background(), req.Server, req.Site, req.Object); err != nil {
			t.Fatalf("request %d: %v", k, err)
		}
	}
	if err := cfg.Tracer.Flush(); err != nil {
		t.Fatal(err)
	}

	// Every client serve (plus any internal peer serve) left a trace
	// event with a canonical source.
	events, err := obs.ReadEvents(&traceBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < requests {
		t.Fatalf("%d trace events for %d client requests", len(events), requests)
	}
	for _, e := range events {
		if e.Source != SourceReplica && e.Source != SourceCache &&
			e.Source != SourcePeer && e.Source != SourceOrigin {
			t.Fatalf("invalid trace source %q", e.Source)
		}
		if e.LatencyMs <= 0 {
			t.Fatalf("non-positive latency %v", e.LatencyMs)
		}
	}

	// The per-edge request counters must sum to the trace event count
	// (both count serves at edges, client-facing and internal).
	var counterTotal int64
	for i := 0; i < sc.Sys.N(); i++ {
		for _, src := range obs.Sources {
			counterTotal += reg.Counter("cdn_edge_requests_total", "",
				obs.Labels{"edge": strconv.Itoa(i), "source": src}).Value()
		}
	}
	if counterTotal != int64(len(events)) {
		t.Errorf("cdn_edge_requests_total sums to %d, trace has %d events",
			counterTotal, len(events))
	}

	// Latency histograms saw every serve.
	var histTotal int64
	for _, src := range obs.Sources {
		histTotal += reg.Histogram("cdn_request_latency_ms", "",
			obs.Labels{"source": src}, obs.DefaultLatencyBuckets()).Count()
	}
	if histTotal != int64(len(events)) {
		t.Errorf("latency histograms count %d, want %d", histTotal, len(events))
	}

	// Edge hit/miss counters agree with the EdgeStats the cluster kept.
	for i := 0; i < sc.Sys.N(); i++ {
		st := cl.EdgeStats(i)
		hits := reg.Counter("cdn_edge_cache_hits_total", "", obs.Labels{"edge": strconv.Itoa(i)}).Value()
		if hits != st.CacheHit {
			t.Errorf("edge %d: counter hits %d, stats %d", i, hits, st.CacheHit)
		}
	}

	// The rendered exposition includes the full metric surface.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"cdn_edge_requests_total", "cdn_edge_cache_hits_total",
		"cdn_edge_cache_misses_total", "cdn_edge_cache_resident_bytes",
		"cdn_request_latency_ms_bucket",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestUninstrumentedClusterUnaffected checks the nil-registry path
// still serves correctly (no nil-map or nil-pointer use).
func TestUninstrumentedClusterUnaffected(t *testing.T) {
	sc, _, cl := startHybridCluster(t)
	stream := sc.Stream(xrand.New(7))
	for k := 0; k < 50; k++ {
		req := stream.Next()
		if _, err := cl.Fetch(context.Background(), req.Server, req.Site, req.Object); err != nil {
			t.Fatalf("request %d: %v", k, err)
		}
	}
}

// TestNotFoundMetricAttribution pins the registry side of the 404 fix:
// out-of-catalog requests increment cdn_edge_notfound_total, never
// cdn_edge_errors_total.
func TestNotFoundMetricAttribution(t *testing.T) {
	sc := smallScenario(t)
	reg := obs.NewRegistry()
	cfg := DefaultConfig()
	cfg.Metrics = reg
	cl, err := Start(sc, placement.None(sc.Sys).Placement, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	paths := []string{"/obj/9999/1", "/obj/x/y", "/obj/0/0"}
	for _, path := range paths {
		resp, err := cl.client.Get(cl.EdgeURL(1) + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Fatalf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
	label := obs.Labels{"edge": "1"}
	if got := reg.Counter("cdn_edge_notfound_total", "", label).Value(); got != int64(len(paths)) {
		t.Errorf("cdn_edge_notfound_total = %d, want %d", got, len(paths))
	}
	if got := reg.Counter("cdn_edge_errors_total", "", label).Value(); got != 0 {
		t.Errorf("cdn_edge_errors_total = %d after 404s, want 0", got)
	}
}
