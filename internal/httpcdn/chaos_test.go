package httpcdn

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/control"
	"repro/internal/fault"
	"repro/internal/placement"
	"repro/internal/xrand"
)

// TestChaosEdgeChurn is the end-to-end failure drill: while concurrent
// clients hammer the cluster, the fault injector kills two edges, the
// passive health tracker ejects them, the controller re-places around
// them, the injector revives them, and probes readmit them. Every
// client request must eventually succeed with a verified payload —
// zero lost, zero misrouted — and the whole episode must be observable
// through /debug/health. Run under -race (see `make chaos`).
func TestChaosEdgeChurn(t *testing.T) {
	sc := smallScenario(t)
	res, err := placement.Hybrid(sc.Sys, placement.HybridConfig{
		Specs:          sc.Work.Specs(),
		AvgObjectBytes: sc.Work.AvgObjectBytes,
	})
	if err != nil {
		t.Fatal(err)
	}

	est, err := control.NewEstimator(control.EstimatorConfig{
		Servers: sc.Sys.N(), Sites: sc.Sys.M(),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Fast-failure knobs so the drill finishes in well under a second of
	// steady state per phase: 2 consecutive failures eject, probes retry
	// every 50 ms, fetch attempts time out quickly.
	var ctrlRef atomic.Pointer[control.Controller]
	var transMu sync.Mutex
	transitions := make(map[string]int) // "eject:1", "readmit:1", ...
	cfg := DefaultConfig()
	cfg.Retry = RetryPolicy{Attempts: 2, Timeout: 500 * time.Millisecond,
		BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond, Jitter: 0.1}
	cfg.FailThreshold = 2
	cfg.EjectFor = 50 * time.Millisecond
	cfg.RequestTap = func(edge, site int) { est.Observe(edge, site) }
	cfg.OnHealthChange = func(kind string, id int, ejected bool) {
		verb := "readmit"
		if ejected {
			verb = "eject"
		}
		transMu.Lock()
		transitions[fmt.Sprintf("%s:%s:%d", verb, kind, id)]++
		transMu.Unlock()
		if c := ctrlRef.Load(); c != nil && kind == "edge" {
			if !ejected {
				c.Unfreeze()
			}
			c.Kick()
		}
	}
	cl, err := Start(sc, res.Placement, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	ctrl, err := control.New(control.Config{
		Base:           sc.Sys,
		Specs:          sc.Work.Specs(),
		AvgObjectBytes: sc.Work.AvgObjectBytes,
		Target:         cl,
		Health:         cl,
		Estimator:      est,
		Hysteresis:     -1, // apply every non-empty plan: the drill tests routing, not damping
		CooldownRounds: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrlRef.Store(ctrl)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var loopDone sync.WaitGroup
	loopDone.Add(1)
	go func() { defer loopDone.Done(); ctrl.Run(ctx) }() // kick-driven: Interval == 0

	// Client load: workers issue logical requests, each retried across
	// first-hop edges until it succeeds. A logical request that cannot be
	// served anywhere within its deadline counts as lost.
	victims := []int{1, 2}
	isVictim := func(i int) bool { return i == victims[0] || i == victims[1] }
	const workers = 4
	var served, lost atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(100 + w))
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				site := rng.Intn(sc.Sys.M())
				object := 1 + rng.Intn(len(sc.Work.Sites[site].Objects))
				deadline := time.Now().Add(5 * time.Second)
				ok := false
				for attempt := 0; time.Now().Before(deadline); attempt++ {
					firstHop := (w + n + attempt) % sc.Sys.N()
					if _, err := cl.Fetch(context.Background(), firstHop, site, object); err == nil {
						ok = true
						break
					}
					time.Sleep(time.Millisecond)
				}
				if ok {
					served.Add(1)
				} else {
					lost.Add(1)
					t.Errorf("request for (%d,%d) lost: no edge served it within its deadline", site, object)
				}
			}
		}(w)
	}

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		for end := time.Now().Add(10 * time.Second); time.Now().Before(end); {
			if cond() {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}
	ejectedSet := func() map[int]bool {
		out := make(map[int]bool)
		for _, i := range cl.EjectedEdges() {
			out[i] = true
		}
		return out
	}

	// Let healthy traffic feed the demand estimator first.
	waitFor("warm-up traffic", func() bool { return est.Observed() > 200 })

	// Kill both victims mid-load. Client traffic alone must surface the
	// deaths: fetches fail, trackers trip, EjectedEdges reports them.
	for _, v := range victims {
		cl.EdgeInjector(v).Set(fault.ModeError, 0)
	}
	waitFor("both victims ejected", func() bool {
		e := ejectedSet()
		return e[victims[0]] && e[victims[1]]
	})

	// The failure-reactive control loop: a reconcile during the outage
	// must exclude the dead edges and leave no replicas on them.
	rep, err := ctrl.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	excluded := make(map[int]bool)
	for _, i := range rep.Excluded {
		excluded[i] = true
	}
	if !excluded[victims[0]] || !excluded[victims[1]] {
		t.Fatalf("reconcile during outage excluded %v, want both of %v", rep.Excluded, victims)
	}
	live := cl.Placement()
	for _, v := range victims {
		for j := 0; j < sc.Sys.M(); j++ {
			if live.Has(v, j) {
				t.Fatalf("site %d still placed on dead edge %d after reconcile", j, v)
			}
		}
	}

	// The outage is visible at /debug/health.
	rr := httptest.NewRecorder()
	cl.HealthHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/health", nil))
	var mid HealthReport
	if err := json.Unmarshal(rr.Body.Bytes(), &mid); err != nil {
		t.Fatal(err)
	}
	for _, v := range victims {
		if mid.Edges[v].State == "healthy" {
			t.Fatalf("/debug/health reports dead edge %d healthy: %+v", v, mid.Edges[v])
		}
	}

	// Revive. Ongoing client traffic doubles as the health probe: the
	// first successful fetch through each victim readmits it.
	for _, v := range victims {
		cl.EdgeInjector(v).Set(fault.ModeOff, 0)
	}
	waitFor("victims readmitted", func() bool { return len(cl.EjectedEdges()) == 0 })

	// With health restored a fresh reconcile excludes nothing.
	rep, err = ctrl.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Excluded) != 0 {
		t.Fatalf("post-recovery reconcile still excludes %v", rep.Excluded)
	}

	// The kick-driven Run loop processed at least one ejection kick on
	// top of the two direct calls above.
	waitFor("kick-driven reconcile", func() bool { return ctrl.Status().Rounds >= 3 })

	close(stop)
	wg.Wait()
	cancel()
	loopDone.Wait()

	if lost.Load() != 0 {
		t.Fatalf("%d of %d requests lost during the churn", lost.Load(), lost.Load()+served.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no requests served at all")
	}
	// The full episode is on the record: each victim ejected and
	// readmitted at least once, both in the transition hook and in the
	// health report's lifetime counters.
	transMu.Lock()
	defer transMu.Unlock()
	final := cl.Health()
	for _, v := range victims {
		if transitions[fmt.Sprintf("eject:edge:%d", v)] == 0 {
			t.Errorf("no ejection transition fired for edge %d: %v", v, transitions)
		}
		if transitions[fmt.Sprintf("readmit:edge:%d", v)] == 0 {
			t.Errorf("no readmission transition fired for edge %d: %v", v, transitions)
		}
		if final.Edges[v].Ejections == 0 || final.Edges[v].Readmissions == 0 {
			t.Errorf("edge %d lifetime counters: %+v", v, final.Edges[v])
		}
	}
	for i := 0; i < sc.Sys.N(); i++ {
		if !isVictim(i) && final.Edges[i].Ejections != 0 {
			t.Errorf("healthy edge %d was ejected: %+v", i, final.Edges[i])
		}
	}
}
