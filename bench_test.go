package repro

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// The benchmarks below regenerate every figure of the paper's evaluation
// at paper scale (50 servers, 20 sites, ~560-node transit–stub topology,
// 500k measured requests) and report the headline quantities as benchmark
// metrics, so `go test -bench=.` reproduces the evaluation end to end.

// BenchmarkFigure3 regenerates the λ=0 mechanism comparison (Figure 3).
func BenchmarkFigure3(b *testing.B) {
	opts := DefaultOptions()
	for i := 0; i < b.N; i++ {
		panels, err := Figure3(context.Background(), opts)
		if err != nil {
			b.Fatal(err)
		}
		reportPanels(b, panels)
	}
}

// BenchmarkFigure4 regenerates the λ=0.1 strong-consistency comparison
// (Figure 4).
func BenchmarkFigure4(b *testing.B) {
	opts := DefaultOptions()
	for i := 0; i < b.N; i++ {
		panels, err := Figure4(context.Background(), opts)
		if err != nil {
			b.Fatal(err)
		}
		reportPanels(b, panels)
	}
}

// BenchmarkFigure5 regenerates the hybrid vs ad-hoc split comparison
// (Figure 5).
func BenchmarkFigure5(b *testing.B) {
	opts := DefaultOptions()
	for i := 0; i < b.N; i++ {
		panels, err := Figure5(context.Background(), opts)
		if err != nil {
			b.Fatal(err)
		}
		reportPanels(b, panels)
	}
}

// BenchmarkFigure6 regenerates the model-accuracy comparison (Figure 6)
// and reports the worst absolute prediction error in percent (the paper
// reports < 7% overall).
func BenchmarkFigure6(b *testing.B) {
	opts := DefaultOptions()
	for i := 0; i < b.N; i++ {
		rows, err := Figure6(context.Background(), opts)
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, r := range rows {
			e := r.ErrPct()
			if e < 0 {
				e = -e
			}
			if e > worst {
				worst = e
			}
		}
		b.ReportMetric(worst, "worst-model-err-%")
	}
}

// BenchmarkSummary regenerates the §5.2 headline gains and reports the
// mean latency reduction of the hybrid scheme versus both stand-alone
// mechanisms (the paper reports ~40%/~30% vs replication and ~15%/~20%
// vs caching).
func BenchmarkSummary(b *testing.B) {
	opts := DefaultOptions()
	for i := 0; i < b.N; i++ {
		rows, err := Summary(context.Background(), opts)
		if err != nil {
			b.Fatal(err)
		}
		var vsRepl, vsCache float64
		for _, g := range rows {
			vsRepl += g.VsReplicationPct()
			vsCache += g.VsCachingPct()
		}
		b.ReportMetric(vsRepl/float64(len(rows)), "gain-vs-replication-%")
		b.ReportMetric(vsCache/float64(len(rows)), "gain-vs-caching-%")
	}
}

// BenchmarkHybridPlacement measures the Figure 2 algorithm alone at paper
// scale (placement only, no simulation).
func BenchmarkHybridPlacement(b *testing.B) {
	sc := MustBuildScenario(DefaultScenario())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HybridPlacement(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyGlobalPlacement measures the baseline placement alone.
func BenchmarkGreedyGlobalPlacement(b *testing.B) {
	sc := MustBuildScenario(DefaultScenario())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReplicationPlacement(sc)
	}
}

// BenchmarkSimulation measures the trace-driven simulator throughput at
// paper scale under the hybrid placement.
func BenchmarkSimulation(b *testing.B) {
	sc := MustBuildScenario(DefaultScenario())
	res, err := HybridPlacement(sc)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultSim()
	cfg.KeepResponseTimes = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MustSimulate(context.Background(), sc, res.Placement, cfg, uint64(i))
	}
	b.ReportMetric(float64(cfg.Requests+cfg.Warmup), "requests/op")
}

// BenchmarkCachePolicyAblation compares replacement policies under the
// hybrid placement (beyond the paper; DESIGN.md §5).
func BenchmarkCachePolicyAblation(b *testing.B) {
	opts := DefaultOptions()
	for i := 0; i < b.N; i++ {
		rows, err := CachePolicyAblation(context.Background(), opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.HitRatio, string(r.Policy)+"-hit-ratio")
		}
	}
}

// BenchmarkThetaSweep measures the hybrid's adaptation to the Zipf
// parameter against both fixed splits (§5.2 remark; DESIGN.md §5).
func BenchmarkThetaSweep(b *testing.B) {
	opts := DefaultOptions()
	for i := 0; i < b.N; i++ {
		rows, err := ThetaSweep(context.Background(), opts, []float64{0.8, 1.0, 1.2})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.HybridMs, fmt.Sprintf("theta-%.1f-hybrid-ms", r.Theta))
		}
	}
}

// BenchmarkClusterComparison regenerates the §5.3 future-work comparison
// (per-cluster replication vs the hybrid at both granularities).
func BenchmarkClusterComparison(b *testing.B) {
	opts := DefaultOptions()
	for i := 0; i < b.N; i++ {
		rows, err := ClusterComparison(context.Background(), opts, 4)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.MeanRTMs, r.Name+"-meanRT-ms")
		}
	}
}

// BenchmarkConsistencyComparison regenerates the §3.3 grounding
// experiment (invalidation vs TTL mechanisms, effective λ).
func BenchmarkConsistencyComparison(b *testing.B) {
	opts := DefaultOptions()
	for i := 0; i < b.N; i++ {
		rows, err := ConsistencyComparison(context.Background(), opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			name := strings.ReplaceAll(strings.ReplaceAll(r.Name, " ", "-"), "(", "")
			name = strings.ReplaceAll(name, ")", "")
			b.ReportMetric(r.EffectiveLambda, name+"-eff-lambda")
		}
	}
}

// BenchmarkAvailabilityComparison regenerates the §1 availability
// grounding (unavailability under origin failures).
func BenchmarkAvailabilityComparison(b *testing.B) {
	opts := DefaultOptions()
	for i := 0; i < b.N; i++ {
		rows, err := AvailabilityComparison(context.Background(), opts, []int{0, 5}, 2)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Unavailability,
				fmt.Sprintf("%s-%dorigins-unavail", r.Mechanism, r.FailedOrigins))
		}
	}
}

// BenchmarkDriftComparison regenerates the §2.1 grounding (static vs
// adaptive placement under popularity drift).
func BenchmarkDriftComparison(b *testing.B) {
	opts := DefaultOptions()
	cfg := DefaultDriftConfig()
	for i := 0; i < b.N; i++ {
		rows, err := DriftComparison(context.Background(), opts, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.MeanRTMs, string(r.Strategy)+"-meanRT-ms")
		}
	}
}

// BenchmarkRedirectionComparison regenerates the §2.2 redirection-policy
// comparison under constrained server capacity.
func BenchmarkRedirectionComparison(b *testing.B) {
	opts := DefaultOptions()
	for i := 0; i < b.N; i++ {
		rows, err := RedirectionComparison(context.Background(), opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.ShareCV, string(r.Policy)+"-share-CV")
		}
	}
}

// BenchmarkKMedianQuality regenerates the greedy-vs-optimal placement
// quality measurement.
func BenchmarkKMedianQuality(b *testing.B) {
	opts := DefaultOptions()
	for i := 0; i < b.N; i++ {
		rows, err := KMedianQuality(context.Background(), opts, []int{1, 2, 3})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.MeanGreedyRatio, fmt.Sprintf("k%d-greedy-ratio", r.K))
		}
	}
}

// BenchmarkModelComparison regenerates the Eq.(1)/(2)-vs-Che ablation.
func BenchmarkModelComparison(b *testing.B) {
	opts := DefaultOptions()
	for i := 0; i < b.N; i++ {
		rows, err := ModelComparison(context.Background(), opts, []float64{0.02, 0.05, 0.1, 0.2})
		if err != nil {
			b.Fatal(err)
		}
		var worstPaper, worstChe float64
		for _, r := range rows {
			if e := abs(r.PaperH - r.SimH); e > worstPaper {
				worstPaper = e
			}
			if e := abs(r.CheH - r.SimH); e > worstChe {
				worstChe = e
			}
		}
		b.ReportMetric(worstPaper, "paper-model-worst-err")
		b.ReportMetric(worstChe, "che-model-worst-err")
	}
}

// BenchmarkUpdateSweep regenerates the read+update objective sweep.
func BenchmarkUpdateSweep(b *testing.B) {
	opts := DefaultOptions()
	for i := 0; i < b.N; i++ {
		rows, err := UpdateSweep(context.Background(), opts, []float64{0, 0.25, 1.0})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.HybridTotal(), fmt.Sprintf("u%.2f-hybrid-total-hops", r.UpdateRatio))
		}
	}
}

// BenchmarkHeterogeneityComparison regenerates the heterogeneous-capacity
// robustness sweep.
func BenchmarkHeterogeneityComparison(b *testing.B) {
	opts := DefaultOptions()
	for i := 0; i < b.N; i++ {
		rows, err := HeterogeneityComparison(context.Background(), opts, []float64{0, 0.8})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.HybridGainPct(), fmt.Sprintf("spread%.1f-hybrid-gain", r.Spread))
		}
	}
}

// BenchmarkScalePlacement measures the lazy-greedy hybrid placement on
// instances grown beyond paper scale with ScaleScenario (servers, sites
// and transit domains ×factor, per-server capacity constant in
// site-equivalents). The full sweep with the scanning-engine baseline
// and the ×10 instance lives in `make bench-scale` → BENCH_scale.json.
func BenchmarkScalePlacement(b *testing.B) {
	for _, factor := range []int{1, 2, 4} {
		sc := MustBuildScenario(ScaleScenario(DefaultScenario(), factor))
		b.Run(fmt.Sprintf("x%d-n%d", factor, sc.Sys.N()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := HybridPlacement(sc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScaleSimulation measures simulator throughput on the grown
// instances under the hybrid placement.
func BenchmarkScaleSimulation(b *testing.B) {
	for _, factor := range []int{1, 2, 4} {
		sc := MustBuildScenario(ScaleScenario(DefaultScenario(), factor))
		res, err := HybridPlacement(sc)
		if err != nil {
			b.Fatal(err)
		}
		cfg := DefaultSim()
		cfg.KeepResponseTimes = false
		b.Run(fmt.Sprintf("x%d-n%d", factor, sc.Sys.N()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MustSimulate(context.Background(), sc, res.Placement, cfg, uint64(i))
			}
			b.ReportMetric(float64(cfg.Requests+cfg.Warmup), "requests/op")
		})
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func reportPanels(b *testing.B, panels []Panel) {
	for _, p := range panels {
		for _, s := range p.Series {
			b.ReportMetric(s.MeanRTMs, fmt.Sprintf("%s-%s-meanRT-ms", p.ID, s.Mechanism))
		}
	}
}
