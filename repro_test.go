package repro

import "testing"

// TestFacadeEndToEnd drives the public API the way the README's
// quick-start does, at reduced scale.
func TestFacadeEndToEnd(t *testing.T) {
	opts := QuickOptions()
	cfg := opts.Base
	sc, err := BuildScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}

	hyb, err := HybridPlacement(sc)
	if err != nil {
		t.Fatal(err)
	}
	repl := ReplicationPlacement(sc)
	pure := CachingPlacement(sc)
	adhoc, err := AdHocPlacement(sc, 0.5)
	if err != nil {
		t.Fatal(err)
	}

	simCfg := DefaultSim()
	simCfg.Requests = 50000
	simCfg.Warmup = 25000

	mHyb := MustSimulate(sc, hyb.Placement, simCfg, 7)
	simCfg.UseCache = false
	mRepl := MustSimulate(sc, repl.Placement, simCfg, 7)
	simCfg.UseCache = true
	mPure := MustSimulate(sc, pure.Placement, simCfg, 7)
	mAdhoc := MustSimulate(sc, adhoc.Placement, simCfg, 7)

	if mHyb.MeanRTMs >= mRepl.MeanRTMs || mHyb.MeanRTMs >= mPure.MeanRTMs {
		t.Errorf("hybrid %.2f ms vs replication %.2f / caching %.2f: headline violated",
			mHyb.MeanRTMs, mRepl.MeanRTMs, mPure.MeanRTMs)
	}
	if mAdhoc.Requests != simCfg.Requests {
		t.Errorf("adhoc measured %d requests", mAdhoc.Requests)
	}
}

func TestFacadeFigureRunners(t *testing.T) {
	opts := QuickOptions()
	opts.Sim.Requests = 30000
	opts.Sim.Warmup = 15000
	if _, err := Figure5(opts); err != nil {
		t.Fatal(err)
	}
	rows, err := Figure6(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d fig6 rows", len(rows))
	}
	if out := FormatFig6(rows); out == "" {
		t.Fatal("empty fig6 output")
	}
}

func TestDefaultsAreValid(t *testing.T) {
	if err := DefaultScenario().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := DefaultSim().Validate(); err != nil {
		t.Fatal(err)
	}
}
