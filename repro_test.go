package repro

import (
	"context"
	"strings"
	"testing"
)

// TestFacadeEndToEnd drives the public API the way the README's
// quick-start does, at reduced scale.
func TestFacadeEndToEnd(t *testing.T) {
	opts := QuickOptions()
	cfg := opts.Base
	sc, err := BuildScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}

	hyb, err := HybridPlacement(sc)
	if err != nil {
		t.Fatal(err)
	}
	repl := ReplicationPlacement(sc)
	pure := CachingPlacement(sc)
	adhoc, err := AdHocPlacement(sc, 0.5)
	if err != nil {
		t.Fatal(err)
	}

	simCfg := DefaultSim()
	simCfg.Requests = 50000
	simCfg.Warmup = 25000

	mHyb := MustSimulate(context.Background(), sc, hyb.Placement, simCfg, 7)
	simCfg.UseCache = false
	mRepl := MustSimulate(context.Background(), sc, repl.Placement, simCfg, 7)
	simCfg.UseCache = true
	mPure := MustSimulate(context.Background(), sc, pure.Placement, simCfg, 7)
	mAdhoc := MustSimulate(context.Background(), sc, adhoc.Placement, simCfg, 7)

	if mHyb.MeanRTMs >= mRepl.MeanRTMs || mHyb.MeanRTMs >= mPure.MeanRTMs {
		t.Errorf("hybrid %.2f ms vs replication %.2f / caching %.2f: headline violated",
			mHyb.MeanRTMs, mRepl.MeanRTMs, mPure.MeanRTMs)
	}
	if mAdhoc.Requests != simCfg.Requests {
		t.Errorf("adhoc measured %d requests", mAdhoc.Requests)
	}
}

func TestFacadeFigureRunners(t *testing.T) {
	opts := QuickOptions()
	opts.Sim.Requests = 30000
	opts.Sim.Warmup = 15000
	if _, err := Figure5(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	rows, err := Figure6(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d fig6 rows", len(rows))
	}
	if out := FormatFig6(rows); out == "" {
		t.Fatal("empty fig6 output")
	}
}

func TestDefaultsAreValid(t *testing.T) {
	if err := DefaultScenario().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := DefaultSim().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPlaceMatchesDeprecatedWrappers: the unified Place entry point must
// produce exactly the placements the per-strategy constructors did.
func TestPlaceMatchesDeprecatedWrappers(t *testing.T) {
	sc, err := BuildScenario(QuickOptions().Base)
	if err != nil {
		t.Fatal(err)
	}
	same := func(a, b *Placement) bool {
		for i := 0; i < sc.Sys.N(); i++ {
			for j := 0; j < sc.Sys.M(); j++ {
				if a.Has(i, j) != b.Has(i, j) {
					return false
				}
			}
		}
		return true
	}

	hybOld, err := HybridPlacement(sc)
	if err != nil {
		t.Fatal(err)
	}
	hybNew, err := Place(sc, PlacementConfig{Strategy: StrategyHybrid})
	if err != nil {
		t.Fatal(err)
	}
	if !same(hybOld.Placement, hybNew.Placement) {
		t.Error("Place(hybrid) differs from HybridPlacement")
	}
	// The zero-value config is hybrid too.
	hybZero, err := Place(sc, PlacementConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !same(hybNew.Placement, hybZero.Placement) {
		t.Error("zero-value PlacementConfig is not hybrid")
	}

	replNew, err := Place(sc, PlacementConfig{Strategy: StrategyReplication})
	if err != nil {
		t.Fatal(err)
	}
	if !same(ReplicationPlacement(sc).Placement, replNew.Placement) {
		t.Error("Place(replication) differs from ReplicationPlacement")
	}
	cachNew, err := Place(sc, PlacementConfig{Strategy: StrategyCaching})
	if err != nil {
		t.Fatal(err)
	}
	if cachNew.Placement.Replicas() != 0 || !same(CachingPlacement(sc).Placement, cachNew.Placement) {
		t.Error("Place(caching) differs from CachingPlacement")
	}
	adOld, err := AdHocPlacement(sc, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	adNew, err := Place(sc, PlacementConfig{Strategy: StrategyAdHoc, CacheFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !same(adOld.Placement, adNew.Placement) {
		t.Error("Place(adhoc) differs from AdHocPlacement")
	}

	if _, err := Place(sc, PlacementConfig{Strategy: "bogus"}); err == nil {
		t.Error("unknown strategy accepted")
	}

	// The observer sees every hybrid replication step.
	var steps int
	obs, err := Place(sc, PlacementConfig{Observer: func(PlacementStep) { steps++ }})
	if err != nil {
		t.Fatal(err)
	}
	if steps != obs.Placement.Replicas() {
		t.Errorf("observer saw %d steps for %d replicas", steps, obs.Placement.Replicas())
	}
}

// TestFacadeScheduleSimulation smoke-tests the failure-aware facade:
// build a schedule, run it, read phase metrics.
func TestFacadeScheduleSimulation(t *testing.T) {
	sc, err := BuildScenario(QuickOptions().Base)
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := Place(sc, PlacementConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSim()
	cfg.Requests = 40000
	cfg.Warmup = 20000
	cfg.KeepResponseTimes = false
	sched, err := NewFaultSchedule(
		FaultEvent{At: cfg.Warmup + 10000, Comp: FaultOrigin, ID: 0, Kind: FaultCrash},
		FaultEvent{At: cfg.Warmup + 30000, Comp: FaultOrigin, ID: 0, Kind: FaultRecover},
	)
	if err != nil {
		t.Fatal(err)
	}
	m, err := SimulateWithSchedule(context.Background(), sc, hyb.Placement, cfg, sched, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.EventsApplied != 2 || len(m.Phases) != 3 {
		t.Fatalf("applied %d events over %d phases, want 2 over 3", m.EventsApplied, len(m.Phases))
	}
	if m.Requests != cfg.Requests {
		t.Fatalf("measured %d requests", m.Requests)
	}
}

func TestScaleScenarioFacade(t *testing.T) {
	base := DefaultScenario()
	s2 := ScaleScenario(base, 2)
	if s2.Workload.Servers != 2*base.Workload.Servers {
		t.Fatalf("servers %d, want ×2", s2.Workload.Servers)
	}
	if s2.CapacityFrac != base.CapacityFrac/2 {
		t.Fatalf("capacity frac %v, want halved", s2.CapacityFrac)
	}
	if err := s2.Validate(); err != nil {
		t.Fatalf("scaled config invalid: %v", err)
	}
	rows := []ScaleRow{{Factor: 1, Nodes: 544, Servers: 50, Sites: 20,
		ReplicationRTMs: 118, CachingRTMs: 79, HybridRTMs: 73, GainPct: 7.7}}
	if out := FormatScaleRows(rows); !strings.Contains(out, "scale sweep") {
		t.Fatalf("unexpected formatting:\n%s", out)
	}
}
